"""Random scenario generation for robustness and fuzz testing.

The seven paper scenarios are fixed shapes; this module generates
random-but-valid marching problems (blob FoIs with optional holes,
lattice-deployable swarms) from a seed, so property-style tests and
stress runs can sweep far more geometry than the paper's evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ScenarioError
from repro.foi.region import FieldOfInterest
from repro.foi.shapes import ellipse_polygon, flower_polygon, radial_blob
from repro.robots.robot import RadioSpec
from repro.robots.swarm import Swarm

__all__ = ["RandomScenario", "random_foi", "random_scenario"]


def _holes_overlap(a, b) -> bool:
    """Mutual-containment overlap test between two hole polygons."""
    return bool(np.any(a.contains(b.vertices))) or bool(np.any(b.contains(a.vertices)))


def random_foi(
    rng: np.random.Generator,
    area: float = 250_000.0,
    max_holes: int = 2,
    name: str = "random-foi",
    hole_clearance: float = 0.05,
) -> FieldOfInterest:
    """A random blob FoI (optionally holed) with the given free area.

    Holes are placed near the blob centre with bounded size so the
    region stays connected and lattice-deployable.  Every hole is
    guaranteed at least ``hole_clearance`` distance (in unit-blob
    coordinates, where the outer boundary sits near radius 1) from the
    outer boundary: a draw that would pinch the free region is shrunk
    about its centroid until it clears, and a draw that cannot clear
    even at minimum size raises :class:`ScenarioError` instead of
    silently degrading the region.

    Parameters
    ----------
    rng : numpy Generator
    area : float
        Target free area.
    max_holes : int
        Uniformly 0..max_holes holes.
    hole_clearance : float
        Minimum unit-space distance between any hole and the outer
        boundary.  Must be non-negative.

    Raises
    ------
    ScenarioError
        If ``hole_clearance`` is negative, or a drawn hole cannot
        satisfy the clearance at any permitted shrink.
    """
    from repro.experiments.zoo.validate import shrink_hole_to_clearance

    if hole_clearance < 0.0:
        raise ScenarioError(
            f"hole_clearance must be non-negative, got {hole_clearance}"
        )
    harmonics = {}
    for k in rng.choice([2, 3, 4, 5], size=2, replace=False):
        harmonics[int(k)] = (
            float(rng.uniform(-0.12, 0.12)),
            float(rng.uniform(-0.12, 0.12)),
        )
    outer = radial_blob(harmonics)

    holes = []
    n_holes = int(rng.integers(0, max_holes + 1))
    # Non-overlapping placements on a coarse angular wheel around centre.
    slots = rng.permutation(4)[:n_holes]
    for slot in slots:
        angle = slot * np.pi / 2.0 + rng.uniform(-0.3, 0.3)
        r = rng.uniform(0.15, 0.35)
        center = (r * np.cos(angle), r * np.sin(angle))
        size = rng.uniform(0.08, 0.16)
        if rng.random() < 0.5:
            hole = ellipse_polygon(size, size * rng.uniform(0.7, 1.3),
                                   samples=20, center=center)
        else:
            hole = flower_polygon(
                petals=int(rng.integers(3, 7)),
                base_radius=size,
                petal_depth=float(rng.uniform(0.2, 0.4)),
                samples=40,
                center=center,
            )
        cleared = shrink_hole_to_clearance(outer, hole, hole_clearance)
        if cleared is None:
            raise ScenarioError(
                f"{name}: hole at angle {angle:.3f} cannot satisfy "
                f"clearance {hole_clearance} from the outer boundary; "
                "lower hole_clearance or max_holes"
            )
        # Deterministic de-overlap: a hole that would intersect an
        # already-kept one is dropped, never silently merged.
        if not any(_holes_overlap(cleared, kept) for kept in holes):
            holes.append(cleared)
    return FieldOfInterest(outer, holes, name=name).scaled_to_area(area)


@dataclass(frozen=True)
class RandomScenario:
    """A generated marching problem."""

    seed: int
    m1: FieldOfInterest
    m2: FieldOfInterest
    swarm: Swarm
    separation_factor: float

    @property
    def comm_range(self) -> float:
        return self.swarm.radio.comm_range


def random_scenario(
    seed: int,
    robot_count: int = 64,
    comm_range: float = 80.0,
    separation_range: tuple[float, float] = (8.0, 40.0),
    max_holes: int = 2,
    hole_clearance: float = 0.05,
) -> RandomScenario:
    """Generate a deployable random marching problem from ``seed``.

    The M1 area is sized so ``robot_count`` robots fit with lattice
    spacing safely below ``comm_range``; M2 is drawn independently and
    translated by a random separation along a random bearing.

    Raises
    ------
    ScenarioError
        If the drawn geometry cannot host the swarm (rare; use another
        seed).
    """
    rng = np.random.default_rng(seed)
    radio = RadioSpec.from_comm_range(comm_range)
    # Lattice spacing ~ sqrt(2A / (sqrt(3) n)); target 60% of comm range.
    target_spacing = 0.6 * comm_range
    area1 = float(np.sqrt(3.0) / 2.0 * robot_count * target_spacing**2)
    m1 = random_foi(rng, area=area1, max_holes=max_holes,
                    name=f"random-M1[{seed}]", hole_clearance=hole_clearance)
    try:
        swarm = Swarm.deploy_lattice(m1, robot_count, radio)
    except Exception as exc:
        raise ScenarioError(f"seed {seed}: cannot deploy swarm ({exc})") from exc

    area2 = area1 * float(rng.uniform(0.7, 1.2))
    m2 = random_foi(rng, area=area2, max_holes=max_holes,
                    name=f"random-M2[{seed}]", hole_clearance=hole_clearance)
    sep = float(rng.uniform(*separation_range)) * comm_range
    bearing = float(rng.uniform(0.0, 2.0 * np.pi))
    offset = m1.centroid + sep * np.array([np.cos(bearing), np.sin(bearing)]) - m2.centroid
    return RandomScenario(
        seed=seed,
        m1=m1,
        m2=m2.translated(offset),
        swarm=swarm,
        separation_factor=sep / comm_range,
    )
