"""Global-connectivity repair (paper Sec. III-D1).

Even a least-stretched harmonic map can stretch some edges beyond the
communication range when M1 and M2 differ strongly; a robot - or a
whole subgroup - could then march without any surviving link and become
isolated, violating Definition 2.

The paper's fix, implemented here:

* Flood from the boundary vertices over the links that *survive* the
  planned motion; robots the flood never reaches form the isolated set
  (singletons or subgroups).
* For each isolated subgroup, pick the member with a one-range
  neighbour that is reached and closest (in hops) to the boundary; that
  member becomes the subgroup root, its neighbour the *reference*.
* The root - and, transitively, the whole subgroup - replaces its
  target with a parallel-escort move: the same displacement vector as
  the reference.  Because all robots move simultaneously and linearly,
  copying the reference's displacement freezes the relative position,
  so the escort link (and all intra-subgroup links) survive the whole
  transition by construction.

The escorted robots end away from their harmonic targets; the Lloyd
adjustment then pulls them to proper coverage positions without ever
breaking connectivity (step-halving rule).
"""

from __future__ import annotations

import numpy as np

from repro.errors import PlanningError
from repro.geometry.vec import as_points
from repro.marching.result import RepairInfo
from repro.network.graphs import adjacency_from_edges, bfs_hops, connected_components
from repro.network.links import links_alive
from repro.network.udg import UnitDiskGraph
from repro.obs import get_metrics, span

__all__ = ["repair_targets"]

_MAX_ROUNDS = 10


def repair_targets(
    starts,
    targets,
    comm_range: float,
    boundary_anchors,
    links: np.ndarray | None = None,
) -> tuple[np.ndarray, RepairInfo]:
    """Adjust ``targets`` so no robot loses its path to the boundary.

    Parameters
    ----------
    starts : (n, 2) array-like
        Positions in M1.
    targets : (n, 2) array-like
        Planned end positions (harmonic-map images).
    comm_range : float
    boundary_anchors : iterable of int
        Robot indices of the network boundary (outer loop of ``T``).
    links : (m, 2) int array, optional
        The M1 communication links; recomputed from ``starts`` when
        omitted.

    Returns
    -------
    (repaired_targets, RepairInfo)

    Raises
    ------
    PlanningError
        If repair cannot reconnect everyone within a bounded number of
        rounds (should not happen: escorts only shrink the isolated
        set).
    """
    p = as_points(starts)
    q = as_points(targets).copy()
    n = len(p)
    if len(q) != n:
        raise PlanningError("starts/targets count mismatch")
    anchors = sorted({int(a) for a in boundary_anchors})
    if not anchors:
        raise PlanningError("repair needs at least one boundary anchor")
    if links is None:
        links = UnitDiskGraph(p, comm_range).edges
    links = np.asarray(links, dtype=int).reshape(-1, 2)

    escorted: dict[int, int] = {}
    isolated_before = -1
    attempted = succeeded = 0
    metrics = get_metrics()
    with span("marching.repair", robots=n, anchors=len(anchors)) as rec:
        for round_idx in range(1, _MAX_ROUNDS + 1):
            # Links that survive the synchronous straight march: alive at
            # the endpoints (distance is convex in t, so endpoints
            # suffice).
            alive = links_alive(links, q, comm_range) & links_alive(
                links, p, comm_range
            )
            surviving = links[alive]
            adj = adjacency_from_edges(n, surviving)
            hops = bfs_hops(adj, anchors)
            isolated = np.flatnonzero(hops < 0)
            if round_idx == 1:
                isolated_before = len(isolated)
            if len(isolated) == 0:
                rec.set_attributes(
                    rounds=round_idx,
                    isolated_before=isolated_before,
                    escorted=len(escorted),
                    attempted=attempted,
                    succeeded=succeeded,
                )
                metrics.counter("repair.subgroups_attempted").inc(attempted)
                metrics.counter("repair.subgroups_escorted").inc(succeeded)
                return q, RepairInfo(
                    escorted=tuple(sorted(escorted)),
                    references=dict(escorted),
                    rounds=round_idx,
                    isolated_before=isolated_before,
                )

            # Group the isolated robots into subgroups over surviving
            # links.
            iso_set = set(isolated.tolist())
            sub_adj = [
                [w for w in adj[v] if w in iso_set] if v in iso_set else []
                for v in range(n)
            ]
            # connected_components returns singletons for non-isolated
            # nodes too; keep only the genuinely isolated components.
            comps = [
                c for c in connected_components(sub_adj) if set(c) <= iso_set
            ]

            # Physical one-range neighbours in M1 (any link, surviving or
            # not).
            full_adj = adjacency_from_edges(n, links)

            progressed = False
            for comp in comps:
                attempted += 1
                root, ref = _choose_root_and_reference(comp, full_adj, hops, p)
                if root is None or ref is None:
                    continue
                displacement = q[ref] - p[ref]
                for member in comp:
                    q[member] = p[member] + displacement
                    escorted[member] = ref
                progressed = True
                succeeded += 1
            if not progressed:
                raise PlanningError(
                    "connectivity repair stalled: an isolated subgroup has "
                    "no reached one-range neighbour"
                )
    raise PlanningError(
        f"connectivity repair did not converge in {_MAX_ROUNDS} rounds"
    )


def _choose_root_and_reference(
    comp: list[int],
    full_adj: list[list[int]],
    hops: np.ndarray,
    p: np.ndarray,
) -> tuple[int | None, int | None]:
    """Pick the subgroup root and its escort reference.

    The paper: "choose a vertex with one of its one-range neighbors not
    just connecting but also nearest to a boundary vertex".  Ties break
    by Euclidean closeness of the reference (the single-robot rule
    "chooses the closest one-range neighbor").
    """
    best: tuple[int, float] | None = None
    best_pair: tuple[int, int] | None = None
    for v in comp:
        for w in full_adj[v]:
            if hops[w] < 0:
                continue  # w itself is isolated
            d = float(np.hypot(p[v, 0] - p[w, 0], p[v, 1] - p[w, 1]))
            key = (int(hops[w]), d)
            if best is None or key < best:
                best = key
                best_pair = (v, w)
    if best_pair is None:
        return None, None
    return best_pair
