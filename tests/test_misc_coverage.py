"""Grab-bag behavioural tests for small public surfaces."""

import numpy as np
import pytest

from repro.baselines import BaselinePlan
from repro.errors import GeometryError
from repro.experiments import format_table
from repro.foi import grid_foi
from repro.geometry import Polygon
from repro.marching import RepairInfo
from repro.mesh import quality_report, triangulate_foi
from repro.robots import RadioSpec, straight_transition
from repro.viz import SvgCanvas


class TestFormatTable:
    def test_empty_rows(self):
        out = format_table(["a", "b"], [])
        assert out.splitlines()[0].startswith("a")
        assert len(out.splitlines()) == 2

    def test_wide_cells_expand_columns(self):
        out = format_table(["x"], [["something long"]])
        header, rule, row = out.splitlines()
        assert len(header) == len(rule) == len(row)

    def test_mixed_types(self):
        out = format_table(["k", "v"], [["a", 1], ["b", 2.5]])
        assert "2.5" in out


class TestRepairInfo:
    def test_escort_count(self):
        info = RepairInfo(
            escorted=(3, 5), references={3: 1, 5: 2}, rounds=2, isolated_before=2
        )
        assert info.escort_count == 2

    def test_empty(self):
        info = RepairInfo(escorted=(), references={}, rounds=1, isolated_before=0)
        assert info.escort_count == 0


class TestBaselinePlanType:
    def test_total_distance_property(self):
        traj = straight_transition([[0, 0]], [[3, 4]])
        plan = BaselinePlan(
            name="x",
            assignment=np.array([0]),
            final_positions=np.array([[3.0, 4.0]]),
            trajectory=traj,
        )
        assert plan.total_distance == pytest.approx(5.0)


class TestQualityReportStr:
    def test_str_contains_stats(self, square_foi):
        fm = triangulate_foi(square_foi, target_points=120)
        rep = quality_report(fm.mesh)
        text = str(rep)
        assert "triangles" in text
        assert "area" in text


class TestRadioSpecProperties:
    def test_lattice_spacing_equals_comm_range_at_tight_spec(self):
        spec = RadioSpec.from_comm_range(100.0)
        assert spec.lattice_spacing == pytest.approx(100.0)

    def test_slack_spec_smaller_spacing(self):
        spec = RadioSpec(comm_range=100.0, sensing_range=20.0)
        assert spec.lattice_spacing == pytest.approx(20.0 * np.sqrt(3.0))
        assert spec.lattice_spacing < spec.comm_range


class TestFoiPointSetInterior:
    def test_interior_complement(self, square_foi):
        ps = grid_foi(square_foi, target_points=120)
        interior = set(ps.interior.tolist())
        boundary = set(ps.outer_boundary.tolist())
        assert interior.isdisjoint(boundary)
        assert len(interior) + len(boundary) == len(ps.points)


class TestSvgCanvasEdges:
    def test_margin_layout(self):
        canvas = SvgCanvas((0, 0, 10, 5), width=220, margin=10)
        assert canvas.height == int(np.ceil(5 * (220 - 20) / 10)) + 20

    def test_to_screen_corners(self):
        canvas = SvgCanvas((0, 0, 10, 10), width=120, margin=10)
        x0, y0 = canvas.to_screen([0, 0])
        x1, y1 = canvas.to_screen([10, 10])
        assert (x0, y0) == (10, 110)
        assert (x1, y1) == (110, 10)


class TestPolygonEdges:
    def test_edges_shape_and_closure(self, unit_square):
        e = unit_square.edges()
        assert e.shape == (4, 2, 2)
        assert np.allclose(e[-1, 1], unit_square.vertices[0])

    def test_repr_contains_area(self):
        poly = Polygon([(0, 0), (2, 0), (0, 2)])
        assert "area" in repr(poly)

    def test_bounds(self, unit_square):
        assert unit_square.bounds == (0.0, 0.0, 1.0, 1.0)
