"""Property test: the resilient executor has exactly two outcomes.

For ANY seeded random fault schedule, the executor either returns a
recovered report whose survivors form a connected network at every
sampled instant of the post-replan trajectory, or raises a typed
:class:`UnrecoverableError`.  No third outcome, no silent partial
recovery, no hang (every internal loop and protocol run is bounded, so
simply completing each example is part of the property).
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.coverage import LloydConfig
from repro.errors import UnrecoverableError
from repro.faults import execute_with_faults, random_schedule
from repro.foi import FieldOfInterest, ellipse_polygon
from repro.marching import MarchingConfig, MarchingPlanner
from repro.metrics import connectivity_report
from repro.robots import RadioSpec, Swarm

FAST = MarchingConfig(
    foi_target_points=150,
    lloyd=LloydConfig(grid_target=500, max_iterations=8),
)


@pytest.fixture(scope="module")
def mission():
    radio = RadioSpec.from_comm_range(80.0)
    m1 = FieldOfInterest(
        ellipse_polygon(1.0, 1.0, samples=30).scaled_to_area(100_000.0),
        name="m1",
    )
    swarm = Swarm.deploy_lattice(m1, 36, radio)
    m2 = FieldOfInterest(
        ellipse_polygon(1.1, 0.9, samples=30).scaled_to_area(95_000.0),
        name="m2",
    ).translated((1000.0, 100.0))
    original = MarchingPlanner(FAST).plan(swarm, m2)
    return swarm, m2, original


class TestBinaryOutcome:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_recovered_or_typed_error(self, mission, seed):
        swarm, m2, original = mission
        schedule = random_schedule(swarm.size, seed=seed)
        try:
            report = execute_with_faults(
                swarm, m2, schedule,
                config=FAST, resolution=8, original=original,
            )
        except UnrecoverableError as exc:
            # The typed outcome: a stage name and a survivor count,
            # never a bare crash or a hang.
            assert exc.stage in ("survivors", "rejoin", "consensus", "replan")
            assert exc.survivors >= 0
            return
        # The recovered outcome: every fault processed, survivors
        # consistent, and C = 1 at every sampled instant of the final
        # (post-replan) trajectory - verified here independently of the
        # executor's own check.
        assert report.outcome == "recovered"
        assert report.metrics.connected_all
        assert report.metrics.survivor_count == len(report.survivor_ids)
        assert report.metrics.survivor_count + report.metrics.lost_robots == (
            swarm.size
        )
        assert set(report.survivor_ids).isdisjoint(schedule.crashed_ids)
        rep = connectivity_report(
            report.final_result.trajectory,
            swarm.radio.comm_range,
            report.final_result.boundary_anchors,
            8,
        )
        assert rep.connected

    @given(seed=st.integers(min_value=0, max_value=500))
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_same_seed_same_outcome(self, mission, seed):
        swarm, m2, original = mission
        schedule = random_schedule(swarm.size, seed=seed, max_events=2)

        def one_run():
            try:
                report = execute_with_faults(
                    swarm, m2, schedule,
                    config=FAST, resolution=8, original=original,
                )
                return ("recovered", report.to_dict())
            except UnrecoverableError as exc:
                return ("unrecoverable", exc.stage, exc.survivors)

        assert one_run() == one_run()
