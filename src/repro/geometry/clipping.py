"""Polygon clipping against half-planes and convex windows.

The coverage module builds each robot's Voronoi cell by clipping a
bounding box against the perpendicular-bisector half-planes of all
other robots (then intersecting with the field of interest).  The
Sutherland-Hodgman convex clip here is exact for that use because
every intermediate subject polygon stays convex.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GeometryError
from repro.geometry.vec import as_point, as_points

__all__ = ["clip_halfplane", "clip_convex", "bounding_box_polygon"]


def clip_halfplane(vertices, point, normal) -> np.ndarray:
    """Clip a polygon to the half-plane ``{x : (x - point) . normal <= 0}``.

    Parameters
    ----------
    vertices : (n, 2) array-like
        Polygon boundary in order (any orientation).  May be empty.
    point : (2,) array-like
        A point on the half-plane boundary line.
    normal : (2,) array-like
        Outward normal; points with positive signed offset are removed.

    Returns
    -------
    (m, 2) ndarray
        Clipped polygon vertices (possibly empty).
    """
    v = as_points(vertices)
    if len(v) == 0:
        return v
    p0 = as_point(point)
    nrm = as_point(normal)
    offsets = (v - p0) @ nrm
    out: list[np.ndarray] = []
    n = len(v)
    for i in range(n):
        cur, nxt = v[i], v[(i + 1) % n]
        d_cur, d_nxt = offsets[i], offsets[(i + 1) % n]
        if d_cur <= 0:
            out.append(cur)
        if (d_cur < 0 < d_nxt) or (d_nxt < 0 < d_cur):
            t = d_cur / (d_cur - d_nxt)
            out.append(cur + t * (nxt - cur))
    if not out:
        return np.zeros((0, 2))
    result = np.array(out)
    # Remove consecutive duplicates introduced by points exactly on the line.
    keep = np.ones(len(result), dtype=bool)
    for i in range(len(result)):
        if np.allclose(result[i], result[(i + 1) % len(result)], atol=1e-12):
            keep[i] = False
    result = result[keep]
    return result if len(result) >= 3 else np.zeros((0, 2))


def clip_convex(subject, window) -> np.ndarray:
    """Sutherland-Hodgman clip of ``subject`` against convex CCW ``window``.

    Parameters
    ----------
    subject : (n, 2) array-like
        Subject polygon (any orientation).
    window : (m, 2) array-like
        Convex clip window in CCW order.

    Returns
    -------
    (k, 2) ndarray
        The intersection polygon (empty if disjoint).

    Raises
    ------
    GeometryError
        If the window has fewer than 3 vertices.
    """
    win = as_points(window)
    if len(win) < 3:
        raise GeometryError("clip window needs at least 3 vertices")
    result = as_points(subject)
    m = len(win)
    for i in range(m):
        a, b = win[i], win[(i + 1) % m]
        edge = b - a
        # CCW window: interior is to the left of each edge; the outward
        # normal is the edge rotated -90 degrees.
        normal = np.array([edge[1], -edge[0]])
        result = clip_halfplane(result, a, normal)
        if len(result) == 0:
            break
    return result


def bounding_box_polygon(points, margin: float = 0.0) -> np.ndarray:
    """CCW rectangle covering ``points`` expanded by ``margin`` on all sides."""
    pts = as_points(points)
    if len(pts) == 0:
        raise GeometryError("bounding box of empty point set")
    xmin, ymin = pts.min(axis=0) - margin
    xmax, ymax = pts.max(axis=0) + margin
    return np.array([[xmin, ymin], [xmax, ymin], [xmax, ymax], [xmin, ymax]])
