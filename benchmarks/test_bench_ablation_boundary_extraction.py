"""A4/A5 - ablations: boundary parameterization mode and extraction rule.

A4: the paper's distributed boundary rule spaces boundary vertices
*uniformly* by hop count; the library defaults to chord-length spacing.
Both are measured end to end (stable links after the march) on
scenario 1.

A5: the centralized Delaunay-restricted extraction vs the localized
one-hop agreement rule: triangle overlap and wall-clock cost.
"""

import time

import numpy as np

from repro.experiments import format_table, get_scenario
from repro.coverage import LloydConfig
from repro.marching import MarchingConfig, MarchingPlanner
from repro.metrics import stable_link_ratio
from repro.network import extract_triangulation, extract_triangulation_localized
from repro.robots import RadioSpec, Swarm


def _swarm():
    spec = get_scenario(1)
    radio = RadioSpec.from_comm_range(spec.comm_range)
    m1, m2 = spec.build(separation_factor=20.0)
    return spec, Swarm.deploy_lattice(m1, spec.robot_count, radio), m2


def test_ablation_boundary_mode(benchmark):
    def run():
        spec, swarm, m2 = _swarm()
        out = {}
        for mode in ("chord", "uniform"):
            cfg = MarchingConfig(
                boundary_mode=mode,
                foi_target_points=320,
                lloyd=LloydConfig(grid_target=1400, max_iterations=50),
            )
            result = MarchingPlanner(cfg).plan(swarm, m2)
            out[mode] = stable_link_ratio(result.links, result.trajectory)
        return out

    ratios = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nAblation A4 - boundary parameterization (scenario 1):")
    print(format_table(
        ["mode", "stable link ratio"],
        [[m, f"{r:.3f}"] for m, r in ratios.items()],
    ))
    # Both parameterizations must deliver the paper's headline quality;
    # chord can only help (lower metric distortion).
    assert ratios["uniform"] > 0.8
    assert ratios["chord"] >= ratios["uniform"] - 0.05


def test_ablation_extraction_rule(benchmark):
    def run():
        _, swarm, _ = _swarm()
        rc = swarm.radio.comm_range
        t0 = time.perf_counter()
        central, _ = extract_triangulation(swarm.positions, rc)
        t_central = time.perf_counter() - t0
        t0 = time.perf_counter()
        local, _ = extract_triangulation_localized(swarm.positions, rc)
        t_local = time.perf_counter() - t0
        c_tris = {tuple(sorted(t)) for t in central.triangles.tolist()}
        l_tris = {tuple(sorted(t)) for t in local.triangles.tolist()}
        return c_tris, l_tris, t_central, t_local

    c_tris, l_tris, t_central, t_local = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    overlap = len(c_tris & l_tris) / len(c_tris)
    print("\nAblation A5 - triangulation extraction (144 robots):")
    print(format_table(
        ["rule", "triangles", "time"],
        [
            ["centralized Delaunay|links", len(c_tris), f"{t_central * 1e3:.1f} ms"],
            ["localized one-hop agreement", len(l_tris), f"{t_local * 1e3:.1f} ms"],
        ],
    ))
    print(f"triangle agreement: {overlap:.1%}")
    # The localized rule never invents triangles and keeps almost all.
    assert l_tris <= c_tris
    assert overlap > 0.9
