"""Extra harness tests: caching, sweeps, evaluation plumbing."""

import numpy as np
import pytest

from repro.experiments import (
    evaluate_trajectory,
    get_scenario,
    run_scenario,
    sweep_separations,
)
from repro.experiments.harness import _CACHE, _scenario_cache
from repro.network import LinkTable
from repro.robots import straight_transition


class TestScenarioCache:
    def test_cache_reused(self):
        _CACHE.clear()
        spec = get_scenario(1)
        a = _scenario_cache(spec, grid_target=900)
        b = _scenario_cache(spec, grid_target=900)
        assert a is b
        assert len(_CACHE) == 1

    def test_cache_keyed_by_resolution(self):
        _CACHE.clear()
        spec = get_scenario(1)
        a = _scenario_cache(spec, grid_target=900)
        b = _scenario_cache(spec, grid_target=800)
        assert a is not b

    def test_q_translates_with_separation(self):
        """The canonical Q is reused across separations by translation -
        check the harness's core caching assumption directly."""
        spec = get_scenario(1)
        run_near = run_scenario(spec, 10.0, methods=("Hungarian",),
                                foi_target_points=220, lloyd_grid_target=900,
                                resolution=12)
        run_far = run_scenario(spec, 30.0, methods=("Hungarian",),
                               foi_target_points=220, lloyd_grid_target=900,
                               resolution=12)
        near_q = run_near.evaluations["Hungarian"].final_positions
        far_q = run_far.evaluations["Hungarian"].final_positions
        offset = far_q.mean(axis=0) - near_q.mean(axis=0)
        # The assignment permutation may differ between separations;
        # compare the position *sets*, not per-robot rows.
        a = np.array(sorted(map(tuple, np.round(far_q - offset, 6))))
        b = np.array(sorted(map(tuple, np.round(near_q, 6))))
        assert np.allclose(a, b, atol=1e-5)


class TestEvaluateTrajectory:
    def test_fields(self):
        pos = np.array([[0.0, 0.0], [1.0, 0.0], [2.0, 0.0]])
        links = LinkTable.from_positions(pos, 1.5)
        traj = straight_transition(pos, pos + [5.0, 0.0])
        ev = evaluate_trajectory("x", traj, links, boundary_anchors=[0, 2])
        assert ev.method == "x"
        assert ev.total_distance == pytest.approx(15.0)
        assert ev.stable_link_ratio == 1.0
        assert ev.globally_connected
        assert ev.connectivity_flag == "Y"
        assert ev.final_positions.shape == (3, 2)


class TestSweep:
    def test_sweep_structure(self):
        spec = get_scenario(1)
        sweep = sweep_separations(
            spec,
            separation_factors=(12.0, 24.0),
            methods=("Hungarian", "direct translation"),
            foi_target_points=220,
            lloyd_grid_target=900,
            resolution=12,
        )
        assert sweep.separations == [12.0, 24.0]
        assert len(sweep.series("distance_ratio", "Hungarian")) == 2
        # Hungarian normalises to itself.
        assert all(
            r == pytest.approx(1.0)
            for r in sweep.series("distance_ratio", "Hungarian")
        )

    def test_distance_ratio_accessor(self):
        spec = get_scenario(1)
        run = run_scenario(
            spec, 12.0, methods=("Hungarian", "direct translation"),
            foi_target_points=220, lloyd_grid_target=900, resolution=12,
        )
        assert run.distance_ratio("direct translation") >= 1.0 - 1e-9
