"""Energy accounting: movement plus link re-pairing overhead.

The paper motivates link preservation economically: "Two ANRs can
communicate with each other only if they are paired and have
established a secure link.  The extensive change of local connectivity
may result in significant overhead and delay for re-pairing the
wireless links" - and the evaluation notes that preserving links
"saves a lot of energy on updating new connections".

This module turns that argument into numbers.  A transition's energy is

``E = move_cost_per_meter * D  +  pairing_cost * (# pairing events)``

where a *pairing event* is any pair of robots coming into communication
range (0 -> 1 edge transition) at some sampled instant of the
transition - including a previously-broken pair re-pairing.  The
initial deployment's links are considered already paired.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.vec import pairwise_distances
from repro.robots.motion import SwarmTrajectory

__all__ = ["EnergyModel", "LinkChurnReport", "link_churn", "transition_energy"]


@dataclass(frozen=True)
class LinkChurnReport:
    """Link-state transitions over a sampled transition.

    Attributes
    ----------
    pairing_events : int
        0 -> 1 transitions summed over all robot pairs (secure-link
        establishments the swarm must perform).
    breaking_events : int
        1 -> 0 transitions (lost pairings).
    initial_links, final_links : int
    stable_links : int
        Pairs connected at every sampled instant.
    samples : int
    """

    pairing_events: int
    breaking_events: int
    initial_links: int
    final_links: int
    stable_links: int
    samples: int

    @property
    def churn(self) -> int:
        """Total link-state transitions (pairings + breaks)."""
        return self.pairing_events + self.breaking_events

    @property
    def new_pairings_required(self) -> int:
        """Secure pairings the *arrived* network needs: final links that
        were not maintained throughout - exactly the red ("new") edges
        of the paper's Fig. 2/3/5 colour convention.  Transient
        brush-past contacts during the march (counted in
        ``pairing_events``) need not be paired at all."""
        return self.final_links - self.stable_links


def link_churn(
    trajectory: SwarmTrajectory, comm_range: float, resolution: int = 32
) -> LinkChurnReport:
    """Count pairing/breaking events over a transition.

    Distances are evaluated at the trajectory's critical times merged
    with a uniform grid (exact for synchronous piecewise-linear motion,
    see :mod:`repro.robots.motion`).
    """
    times = trajectory.sample_times(resolution)
    table = trajectory.positions_over(times)
    n = table.shape[1]
    iu, ju = np.triu_indices(n, k=1)
    prev = None
    pairing = 0
    breaking = 0
    initial = final = 0
    stable = None
    for k in range(table.shape[0]):
        d = pairwise_distances(table[k])[iu, ju]
        connected = d <= comm_range
        if prev is None:
            initial = int(connected.sum())
            stable = connected.copy()
        else:
            pairing += int((connected & ~prev).sum())
            breaking += int((~connected & prev).sum())
            stable &= connected
        prev = connected
    final = int(prev.sum()) if prev is not None else 0
    return LinkChurnReport(
        pairing_events=pairing,
        breaking_events=breaking,
        initial_links=initial,
        final_links=final,
        stable_links=int(stable.sum()) if stable is not None else 0,
        samples=len(times),
    )


@dataclass(frozen=True)
class EnergyModel:
    """Cost coefficients of the energy account.

    Attributes
    ----------
    move_cost_per_meter : float
        Joules per metre of robot travel (default 6 J/m, a typical
        small ground robot at ~2 J/m/kg and ~3 kg).
    pairing_cost : float
        Joules per secure-link establishment (radio handshake + key
        agreement; default 25 J, dominated by the radio staying in
        high-duty mode during pairing).
    """

    move_cost_per_meter: float = 6.0
    pairing_cost: float = 25.0

    def movement_energy(self, trajectory: SwarmTrajectory) -> float:
        return self.move_cost_per_meter * trajectory.total_distance()

    def pairing_energy(self, churn: LinkChurnReport) -> float:
        """Cost of establishing the arrived network's new links."""
        return self.pairing_cost * churn.new_pairings_required


@dataclass(frozen=True)
class EnergyReport:
    """A transition's energy split."""

    movement: float
    pairing: float
    churn: LinkChurnReport

    @property
    def total(self) -> float:
        return self.movement + self.pairing


def transition_energy(
    trajectory: SwarmTrajectory,
    comm_range: float,
    model: EnergyModel | None = None,
    resolution: int = 32,
) -> EnergyReport:
    """Total transition energy under an :class:`EnergyModel`."""
    m = model or EnergyModel()
    churn = link_churn(trajectory, comm_range, resolution)
    return EnergyReport(
        movement=m.movement_energy(trajectory),
        pairing=m.pairing_energy(churn),
        churn=churn,
    )
