"""Cross-module property-based tests of core invariants."""

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.experiments.zoo import (
    FAMILIES,
    ZooConfig,
    build_foi,
    run_zoo_case,
    validate_foi,
)
from repro.experiments.zoo.strategies import st_zoo_case, st_zoo_foi
from repro.foi import FieldOfInterest, ellipse_polygon
from repro.geometry import Polygon, convex_hull, signed_area
from repro.mesh import delaunay_mesh
from repro.network import LinkTable
from repro.robots import TimedPath, straight_transition

coord = st.floats(-50, 50, allow_nan=False, allow_infinity=False)
point = st.tuples(coord, coord)


class TestDelaunayInvariants:
    @given(st.lists(point, min_size=5, max_size=40, unique=True))
    @settings(max_examples=60, deadline=None)
    def test_euler_characteristic_is_one(self, pts):
        # Quantise to a coarse grid so hypothesis cannot produce
        # near-duplicate points whose sliver triangles get filtered.
        arr = np.unique(np.round(np.asarray(pts, dtype=float) * 2) / 2, axis=0)
        assume(len(arr) >= 5)
        hull = convex_hull(arr)
        assume(len(hull) >= 3 and abs(signed_area(hull)) > 1e-3)
        mesh = delaunay_mesh(arr)
        # Restrict to general-position draws: every input vertex used
        # (degenerate collinear runs on the hull drop slivers and leave
        # orphan vertices, which is documented filtering behaviour).
        assume(len(np.unique(mesh.triangles)) == len(arr))
        from repro.errors import MeshError

        try:
            loops = mesh.boundary_loops
        except MeshError:
            assume(False)  # pinched: also a degenerate-collinearity artefact
        # A triangulation of a convex region is a topological disk.
        assert mesh.euler_characteristic == 1
        assert mesh.is_connected()
        assert len(loops) == 1

    @given(st.lists(point, min_size=5, max_size=30, unique=True))
    @settings(max_examples=60, deadline=None)
    def test_boundary_is_convex_hull(self, pts):
        arr = np.asarray(pts, dtype=float)
        hull = convex_hull(arr)
        assume(len(hull) >= 3 and abs(signed_area(hull)) > 1e-3)
        mesh = delaunay_mesh(arr)
        boundary_pts = mesh.vertices[mesh.boundary_vertices]
        hull_set = {tuple(np.round(p, 9)) for p in hull}
        # Every hull corner is a boundary vertex of the triangulation.
        boundary_set = {tuple(np.round(p, 9)) for p in boundary_pts}
        assert hull_set <= boundary_set


class TestTimedPathInvariants:
    @given(st.lists(point, min_size=2, max_size=8))
    @settings(max_examples=100)
    def test_positions_within_waypoint_bbox(self, wps):
        path = TimedPath.constant_speed(np.asarray(wps, float), 0.0, 1.0)
        arr = np.asarray(wps, dtype=float)
        lo = arr.min(axis=0) - 1e-9
        hi = arr.max(axis=0) + 1e-9
        for t in np.linspace(-0.2, 1.2, 13):
            p = path.position_at(t)
            assert (p >= lo).all() and (p <= hi).all()

    @given(st.lists(point, min_size=2, max_size=5), st.lists(point, min_size=1, max_size=5))
    @settings(max_examples=100)
    def test_then_length_additive(self, first, second):
        a = TimedPath.constant_speed(np.asarray(first, float), 0.0, 0.5)
        tail = np.vstack([a.end, np.asarray(second, float)])
        b = TimedPath.constant_speed(tail, 0.5, 1.0)
        joined = a.then(b)
        assert joined.length == pytest.approx(a.length + b.length, abs=1e-6)


class TestLinkTableInvariants:
    @given(
        st.integers(3, 10),
        st.floats(0.5, 4.0),
        st.integers(0, 10_000),
    )
    @settings(max_examples=80, deadline=None)
    def test_stable_mask_monotone_in_snapshots(self, n, rc, seed):
        rng = np.random.default_rng(seed)
        pos = rng.uniform(0, 6, (n, 2))
        table = LinkTable.from_positions(pos, rc)
        snaps = [pos + rng.normal(0, 0.5, (n, 2)) for _ in range(4)]
        shorter = table.stable_mask_over([pos] + snaps[:2])
        longer = table.stable_mask_over([pos] + snaps)
        # More snapshots can only break more links, never revive them.
        assert not np.any(longer & ~shorter)

    @given(st.integers(2, 8), st.integers(0, 10_000))
    @settings(max_examples=80, deadline=None)
    def test_ratio_bounds(self, n, seed):
        rng = np.random.default_rng(seed)
        pos = rng.uniform(0, 5, (n, 2))
        table = LinkTable.from_positions(pos, 2.0)
        traj = straight_transition(pos, pos + rng.normal(0, 1, (n, 2)))
        ratio = table.stable_link_ratio_over(traj.snapshots(8))
        assert 0.0 <= ratio <= 1.0


class TestFoiInvariants:
    FOI = FieldOfInterest(
        Polygon([(0, 0), (20, 0), (20, 20), (0, 20)]),
        [ellipse_polygon(3, 3, samples=16, center=(10, 10))],
    )

    @given(st.floats(-5, 25), st.floats(-5, 25))
    @settings(max_examples=150)
    def test_project_inside_lands_in_free_region(self, x, y):
        p = self.FOI.project_inside([x, y])
        assert self.FOI.contains(p)

    @given(st.floats(0.1, 19.9), st.floats(0.1, 19.9))
    @settings(max_examples=100)
    def test_containment_consistent_with_distances(self, x, y):
        inside = bool(self.FOI.contains([x, y]))
        hole_d = self.FOI.hole_distance([x, y])
        in_hole = self.FOI.hole_containing([x, y]) is not None
        if in_hole:
            assert not inside
        if inside:
            assert not in_hole
            assert hole_d >= 0


class TestZooGeometryInvariants:
    """Every zoo draw must be a valid, replayable marching region."""

    @given(foi=st_zoo_foi(max_seed=500))
    @settings(max_examples=10, deadline=None)
    def test_generated_foi_structurally_valid(self, foi):
        report = validate_foi(foi)
        assert report.ok, report.failures

    @given(st.sampled_from(FAMILIES), st.integers(0, 500))
    @settings(max_examples=10, deadline=None)
    def test_build_is_deterministic_in_family_and_seed(self, family, seed):
        a, pa = build_foi(family, seed)
        b, pb = build_foi(family, seed)
        assert pa == pb
        assert np.array_equal(a.outer.vertices, b.outer.vertices)
        assert len(a.holes) == len(b.holes)


class TestZooPipelineInvariants:
    """Whole-pipeline paper claims over procedurally generated scenarios.

    Tight example budget: each example runs the full plan->verify
    pipeline.  The heavy sweep lives in ``python -m repro zoo``; this
    keeps a hypothesis-shrunk wedge of it in the tier-1 suite.
    """

    CONFIG = ZooConfig(
        robot_count=25,
        foi_target_points=120,
        grid_target=400,
        methods=("ours (a)",),
        shrink=False,
    )

    @given(case=st_zoo_case(max_seed=60))
    @settings(max_examples=3, deadline=None)
    def test_full_pipeline_invariants(self, case):
        doc = run_zoo_case(case, self.CONFIG)
        assert doc["outcome"] == "pass", doc
        for method_doc in doc["methods"].values():
            inv = method_doc["invariants"]
            # C = 1 at every sampled instant and every jump left-limit.
            assert inv["connectivity"]["ok"]
            assert inv["connectivity"]["left_limit_isolated"] == 0
            # Lemma 1: L in [0, 1], D at or above the matching floor.
            assert inv["lemma1"]["ok"]
            # Definition 2 re-verified from the wire bytes; canonical
            # document bytes stable under JSON round-trip.
            assert inv["definition2"]["ok"]
            assert inv["document"]["ok"]
