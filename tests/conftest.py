"""Shared fixtures: small FoIs, swarms and meshes reused across tests.

Session-scoped where construction is expensive; tests must not mutate
fixture objects (the library's value types are immutable, which the
structure tests verify).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exec import ContentCache, activate_cache
from repro.foi import FieldOfInterest, ellipse_polygon, m1_base
from repro.geometry import Polygon
from repro.mesh import triangulate_foi
from repro.robots import RadioSpec, Swarm


@pytest.fixture(autouse=True)
def _fresh_content_cache():
    """A private content cache per test.

    Caching stays on (the wiring is exercised everywhere), but a warm
    entry from one test can no longer turn another test's disk-map
    solve into a hit and change its observable span/solve counts.
    Tests that study caching itself activate their own caches inside
    this scope.
    """
    with activate_cache(ContentCache()):
        yield


@pytest.fixture(scope="session")
def unit_square() -> Polygon:
    return Polygon([(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)])


@pytest.fixture(scope="session")
def concave_polygon() -> Polygon:
    # An L-shape: concave at the inner corner.
    return Polygon([(0, 0), (2, 0), (2, 1), (1, 1), (1, 2), (0, 2)])


@pytest.fixture(scope="session")
def square_foi() -> FieldOfInterest:
    return FieldOfInterest(
        Polygon([(0, 0), (100, 0), (100, 100), (0, 100)]), name="square"
    )


@pytest.fixture(scope="session")
def holed_foi() -> FieldOfInterest:
    outer = Polygon([(0, 0), (100, 0), (100, 100), (0, 100)])
    hole = ellipse_polygon(12.0, 10.0, samples=20, center=(50.0, 50.0))
    return FieldOfInterest(outer, [hole], name="square-with-hole")


@pytest.fixture(scope="session")
def radio() -> RadioSpec:
    return RadioSpec.from_comm_range(80.0)


@pytest.fixture(scope="session")
def small_radio() -> RadioSpec:
    return RadioSpec.from_comm_range(20.0)


@pytest.fixture(scope="session")
def m1_small_swarm(radio) -> Swarm:
    """64 robots on the paper's M1 - big enough for a real triangulation.

    (Fewer robots would need a lattice pitch above the communication
    range, which ``deploy_lattice`` rightly refuses.)
    """
    return Swarm.deploy_lattice(m1_base(), 64, radio)


@pytest.fixture(scope="session")
def square_swarm(square_foi, small_radio) -> Swarm:
    return Swarm.deploy_lattice(square_foi, 25, small_radio)


@pytest.fixture(scope="session")
def square_foi_mesh(square_foi):
    return triangulate_foi(square_foi, target_points=150)


@pytest.fixture(scope="session")
def holed_foi_mesh(holed_foi):
    return triangulate_foi(holed_foi, target_points=200)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
