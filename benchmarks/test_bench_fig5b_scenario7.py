"""E7 - Fig. 5(b) rows 4-5: scenario 7 (two-hole M1 -> flower-hole M2)."""

from _shared import assert_paper_shape, get_sweep, print_sweep


def test_fig5b_scenario7(benchmark):
    sweep = benchmark.pedantic(get_sweep, args=(7,), rounds=1, iterations=1)
    print_sweep(sweep)
    assert_paper_shape(sweep)
