"""Synchronous-round message-passing simulator.

The paper's algorithms are distributed: robots exchange messages with
one-range neighbours (boundary-loop hop counting, flooding of link
statistics, isolated-subgroup detection).  This runtime simulates that
execution model faithfully enough to validate the protocols:

* Nodes hold local state and a ``handle`` callback.
* Time advances in *rounds*; messages sent in round ``k`` are delivered
  at the start of round ``k + 1``, only along edges of the current
  communication topology.
* Nodes may only address direct neighbours (no global channels), and a
  node learns its neighbour set only through the runtime.

Protocols are deliberately written against this narrow API so that the
"fully distributed" claims of Sec. III are backed by running code, with
the centralized implementations in the rest of the library acting as
oracles in the test suite.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.errors import ProtocolError
from repro.obs import get_metrics, span

__all__ = ["LinkFaults", "Message", "Node", "SyncNetwork"]


@dataclass(frozen=True)
class Message:
    """One message in flight.

    Attributes
    ----------
    sender, receiver : int
        Node IDs; the runtime enforces that they are neighbours when
        the message is sent.
    kind : str
        Protocol-defined tag.
    payload : Any
        Protocol-defined content (kept immutable by convention).
    """

    sender: int
    receiver: int
    kind: str
    payload: Any = None


class Node:
    """A protocol participant: local state plus a message handler.

    Subclasses (or instances configured with callbacks) implement
    ``on_round``; the runtime calls it once per round with the messages
    delivered this round and a ``send`` function restricted to current
    neighbours.
    """

    def __init__(self, node_id: int) -> None:
        self.node_id = int(node_id)
        self.state: dict[str, Any] = {}
        self.halted = False

    def on_start(self, api: "NodeApi") -> None:
        """Called once before round 0; override to initiate messages."""

    def on_round(self, api: "NodeApi", inbox: Sequence[Message]) -> None:
        """Called every round with this round's delivered messages."""
        raise NotImplementedError

    def halt(self) -> None:
        """Mark this node as finished; it receives no further callbacks."""
        self.halted = True


@dataclass
class NodeApi:
    """The runtime services visible to one node during one round.

    Attributes
    ----------
    node_id : int
    round_index : int
    neighbors : tuple[int, ...]
        Current one-range neighbours.
    """

    node_id: int
    round_index: int
    neighbors: tuple[int, ...]
    _outbox: list[Message] = field(default_factory=list)

    def send(self, receiver: int, kind: str, payload: Any = None) -> None:
        """Queue a message to a direct neighbour for the next round.

        Raises
        ------
        ProtocolError
            If ``receiver`` is not a current neighbour.
        """
        if receiver not in self.neighbors:
            raise ProtocolError(
                f"node {self.node_id} tried to message non-neighbour {receiver}"
            )
        self._outbox.append(
            Message(sender=self.node_id, receiver=int(receiver), kind=kind, payload=payload)
        )

    def broadcast(self, kind: str, payload: Any = None) -> None:
        """Send the same message to every current neighbour."""
        for w in self.neighbors:
            self.send(w, kind, payload)


@dataclass(frozen=True)
class LinkFaults:
    """Declarative message-level fault model for :class:`SyncNetwork`.

    All processes draw from the network's single seeded RNG, so a given
    ``(faults, seed)`` pair reproduces the exact same run.  Every knob
    defaults to "off"; a default-constructed ``LinkFaults`` is a no-op.

    Attributes
    ----------
    loss_rate : float
        Baseline per-message drop probability (same semantics as the
        ``SyncNetwork`` constructor argument; the two add up).
    loss_windows : tuple of (start_round, end_round, rate)
        Extra drop probability applied while ``start <= round < end`` -
        a burst of interference rather than steady background loss.
    per_edge_loss : mapping (sender, receiver) -> rate
        Extra drop probability on specific directed links (a weak or
        obstructed link between two particular robots).
    delay_rate : float
        Probability a surviving message is *delayed* instead of being
        delivered next round; it is re-queued for 1..``max_delay``
        extra rounds (uniform).  Delivery still requires the link to
        exist at the delayed delivery round.
    max_delay : int
        Largest extra delay in rounds (>= 1 when ``delay_rate > 0``).
    duplication_rate : float
        Probability a delivered message is additionally re-delivered
        one round later (a retransmission duplicate).
    crash_at : mapping round -> node ids
        Nodes that die at the *start* of the given round: they stop
        handling messages, send nothing further, and disappear from
        every neighbour list.  Messages addressed to them are dropped
        (and counted).
    """

    loss_rate: float = 0.0
    loss_windows: tuple[tuple[int, int, float], ...] = ()
    per_edge_loss: Mapping[tuple[int, int], float] | None = None
    delay_rate: float = 0.0
    max_delay: int = 1
    duplication_rate: float = 0.0
    crash_at: Mapping[int, Sequence[int]] | None = None

    def __post_init__(self) -> None:
        for name in ("loss_rate", "delay_rate", "duplication_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate < 1.0:
                raise ProtocolError(f"{name} must be in [0, 1), got {rate}")
        for window in self.loss_windows:
            if len(window) != 3:
                raise ProtocolError("loss window must be (start, end, rate)")
            start, end, rate = window
            if end <= start:
                raise ProtocolError("loss window must have end > start")
            if not 0.0 <= rate < 1.0:
                raise ProtocolError("loss window rate must be in [0, 1)")
        if self.delay_rate > 0 and self.max_delay < 1:
            raise ProtocolError("max_delay must be >= 1 when delaying")

    @property
    def active(self) -> bool:
        """Whether any fault process can ever fire."""
        return bool(
            self.loss_rate
            or self.loss_windows
            or self.per_edge_loss
            or self.delay_rate
            or self.duplication_rate
            or self.crash_at
        )

    def loss_for(self, round_index: int, sender: int, receiver: int) -> float:
        """Effective drop probability for one message this round."""
        rate = self.loss_rate
        for start, end, extra in self.loss_windows:
            if start <= round_index < end:
                rate += extra
        if self.per_edge_loss:
            rate += self.per_edge_loss.get((sender, receiver), 0.0)
        return min(rate, 0.999999)


class SyncNetwork:
    """Drives a set of nodes over a (possibly time-varying) topology.

    Parameters
    ----------
    nodes : sequence of Node
        Node ``i`` must have ``node_id == i``.
    topology : callable(round_index) -> adjacency
        Returns per-node neighbour lists for the round.  A static
        topology can be passed as a plain adjacency list.
    loss_rate : float
        Probability that any individual message is silently dropped in
        transit (independent per message).  Defaults to 0 (reliable
        links); protocols claiming robustness are tested against
        positive rates.
    seed : int
        Seed of the fault processes, so faulty runs are reproducible.
    faults : LinkFaults, optional
        Richer fault model: loss windows, per-edge loss, delay,
        duplication and node crashes.  Its ``loss_rate`` adds to the
        plain ``loss_rate`` argument.

    Per-kind fault bookkeeping lives in ``dropped_by_kind``,
    ``delayed_by_kind`` and ``duplicated_by_kind`` (message ``kind`` ->
    count), mirrored into obs counters by :meth:`run` so protocol tests
    can assert on exactly what the fault process did.
    """

    def __init__(
        self,
        nodes: Sequence[Node],
        topology: Callable[[int], Sequence[Sequence[int]]] | Sequence[Sequence[int]],
        loss_rate: float = 0.0,
        seed: int = 0,
        faults: LinkFaults | None = None,
    ) -> None:
        self.nodes = list(nodes)
        for i, node in enumerate(self.nodes):
            if node.node_id != i:
                raise ProtocolError(f"node at index {i} has id {node.node_id}")
        if callable(topology):
            self._topology = topology
        else:
            static = [tuple(int(w) for w in nbrs) for nbrs in topology]
            if len(static) != len(self.nodes):
                raise ProtocolError("topology size does not match node count")
            self._topology = lambda _round: static
        if not 0.0 <= loss_rate < 1.0:
            raise ProtocolError("loss_rate must be in [0, 1)")
        self.loss_rate = float(loss_rate)
        self.faults = faults
        if faults is not None and faults.crash_at:
            for ids in faults.crash_at.values():
                for node_id in ids:
                    if not 0 <= int(node_id) < len(self.nodes):
                        raise ProtocolError(
                            f"crash schedule names unknown node {node_id}"
                        )
        self._loss_rng = random.Random(seed)
        self.round_index = -1
        self._pending: list[Message] = []
        self._delayed: list[tuple[int, Message]] = []
        self.crashed: set[int] = set()
        self.delivered_messages = 0
        self.dropped_messages = 0
        self.delayed_messages = 0
        self.duplicated_messages = 0
        self.dropped_by_kind: dict[str, int] = {}
        self.delayed_by_kind: dict[str, int] = {}
        self.duplicated_by_kind: dict[str, int] = {}

    # ------------------------------------------------------------------

    def _adjacency(self) -> list[tuple[int, ...]]:
        adj = self._topology(max(self.round_index, 0))
        if len(adj) != len(self.nodes):
            raise ProtocolError("topology size does not match node count")
        if self.crashed:
            return [
                ()
                if i in self.crashed
                else tuple(int(w) for w in nbrs if int(w) not in self.crashed)
                for i, nbrs in enumerate(adj)
            ]
        return [tuple(int(w) for w in nbrs) for nbrs in adj]

    def _apply_crashes(self, round_index: int) -> None:
        if self.faults is None or not self.faults.crash_at:
            return
        for node_id in self.faults.crash_at.get(round_index, ()):
            self.crashed.add(int(node_id))
            self.nodes[int(node_id)].halt()

    def run(self, max_rounds: int = 10_000) -> int:
        """Run until every node halts or no message is in flight.

        Returns the number of rounds executed.

        Raises
        ------
        ProtocolError
            If ``max_rounds`` is exceeded (livelock guard).
        """
        with span("distributed.network_run", nodes=len(self.nodes)) as sp_:
            delivered_at_start = self.delivered_messages
            dropped_at_start = self.dropped_messages
            delayed_at_start = self.delayed_messages
            duplicated_at_start = self.duplicated_messages
            rounds = self._run_rounds(max_rounds)
            delivered = self.delivered_messages - delivered_at_start
            dropped = self.dropped_messages - dropped_at_start
            delayed = self.delayed_messages - delayed_at_start
            duplicated = self.duplicated_messages - duplicated_at_start
            sp_.set_attributes(
                rounds=rounds,
                delivered=delivered,
                dropped=dropped,
                delayed=delayed,
                duplicated=duplicated,
                crashed=len(self.crashed),
            )
        m = get_metrics()
        m.counter("distributed.rounds").inc(rounds)
        m.counter("distributed.messages_delivered").inc(delivered)
        if dropped:
            m.counter("distributed.messages_dropped").inc(dropped)
        if delayed:
            m.counter("distributed.messages_delayed").inc(delayed)
        if duplicated:
            m.counter("distributed.messages_duplicated").inc(duplicated)
        for kind, count in sorted(self.dropped_by_kind.items()):
            m.counter(f"distributed.dropped.{kind}").inc(count)
        for kind, count in sorted(self.delayed_by_kind.items()):
            m.counter(f"distributed.delayed.{kind}").inc(count)
        for kind, count in sorted(self.duplicated_by_kind.items()):
            m.counter(f"distributed.duplicated.{kind}").inc(count)
        return rounds

    def _deliver(
        self,
        msg: Message,
        adj: list[tuple[int, ...]],
        inboxes: dict[int, list[Message]],
        allow_faults: bool = True,
    ) -> None:
        """Run one message through the link/fault pipeline."""
        # Deliver only if the link still exists this round (crashed
        # endpoints have no links at all) and the fault processes spare
        # the message.
        if msg.sender not in adj[msg.receiver]:
            if msg.receiver in self.crashed or msg.sender in self.crashed:
                self.dropped_messages += 1
                self.dropped_by_kind[msg.kind] = (
                    self.dropped_by_kind.get(msg.kind, 0) + 1
                )
            return
        loss = self.loss_rate
        if self.faults is not None:
            loss = min(
                loss + self.faults.loss_for(
                    self.round_index, msg.sender, msg.receiver
                ),
                0.999999,
            )
        if loss > 0 and self._loss_rng.random() < loss:
            self.dropped_messages += 1
            self.dropped_by_kind[msg.kind] = (
                self.dropped_by_kind.get(msg.kind, 0) + 1
            )
            return
        faults = self.faults
        if allow_faults and faults is not None:
            if faults.delay_rate > 0 and self._loss_rng.random() < faults.delay_rate:
                extra = self._loss_rng.randint(1, faults.max_delay)
                self._delayed.append((self.round_index + extra, msg))
                self.delayed_messages += 1
                self.delayed_by_kind[msg.kind] = (
                    self.delayed_by_kind.get(msg.kind, 0) + 1
                )
                return
            if (
                faults.duplication_rate > 0
                and self._loss_rng.random() < faults.duplication_rate
            ):
                # The duplicate rides one round behind the original.
                self._delayed.append((self.round_index + 1, msg))
                self.duplicated_messages += 1
                self.duplicated_by_kind[msg.kind] = (
                    self.duplicated_by_kind.get(msg.kind, 0) + 1
                )
        inboxes.setdefault(msg.receiver, []).append(msg)
        self.delivered_messages += 1

    def _run_rounds(self, max_rounds: int) -> int:
        self._apply_crashes(0)
        adj = self._adjacency()
        self.round_index = 0
        for i, node in enumerate(self.nodes):
            if node.halted:
                continue
            api = NodeApi(node_id=i, round_index=0, neighbors=adj[i])
            node.on_start(api)
            self._pending.extend(api._outbox)

        rounds = 0
        while rounds < max_rounds:
            if all(n.halted for n in self.nodes):
                return rounds
            if not self._pending and not self._delayed and rounds > 0:
                # Quiescence: nothing in flight and nobody spoke last round.
                return rounds
            rounds += 1
            self.round_index = rounds
            self._apply_crashes(rounds)
            adj = self._adjacency()
            inboxes: dict[int, list[Message]] = {}
            for msg in self._pending:
                self._deliver(msg, adj, inboxes)
            self._pending = []
            if self._delayed:
                due = [m for r, m in self._delayed if r <= rounds]
                self._delayed = [
                    (r, m) for r, m in self._delayed if r > rounds
                ]
                for msg in due:
                    # A delayed/duplicated copy is delivered verbatim;
                    # it cannot be delayed or duplicated again (one
                    # fault per message keeps the process bounded).
                    self._deliver(msg, adj, inboxes, allow_faults=False)
            for i, node in enumerate(self.nodes):
                if node.halted:
                    continue
                api = NodeApi(node_id=i, round_index=rounds, neighbors=adj[i])
                node.on_round(api, inboxes.get(i, []))
                self._pending.extend(api._outbox)
        raise ProtocolError(f"protocol did not terminate within {max_rounds} rounds")
