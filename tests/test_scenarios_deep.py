"""Deep geometry checks across all seven scenario FoIs."""

import numpy as np
import pytest

from repro.experiments import SCENARIOS, get_scenario, lemma1_example
from repro.harmonic import compute_disk_map
from repro.mesh import fill_holes, triangulate_foi


@pytest.mark.parametrize("sid", sorted(SCENARIOS))
class TestScenarioGeometry:
    def test_both_fois_triangulate_and_embed(self, sid):
        """Every scenario FoI must grid, triangulate, fill, and embed -
        the minimum the pipeline demands of the geometry."""
        spec = get_scenario(sid)
        for foi in spec.build(separation_factor=15.0):
            fm = triangulate_foi(foi, target_points=260)
            assert fm.mesh.is_connected()
            assert len(fm.mesh.boundary_loops) == 1 + len(foi.holes)
            filled = fill_holes(fm.mesh)
            assert filled.mesh.is_topological_disk()
            dm = compute_disk_map(fm.mesh)
            assert dm.is_embedding()

    def test_mesh_area_matches_foi(self, sid):
        spec = get_scenario(sid)
        _, m2 = spec.build(separation_factor=15.0)
        fm = triangulate_foi(m2, target_points=260)
        assert fm.mesh.triangle_areas().sum() == pytest.approx(m2.area, rel=0.1)

    def test_fois_simple_polygons(self, sid):
        spec = get_scenario(sid)
        m1, m2 = spec.build(separation_factor=15.0)
        for foi in (m1, m2):
            assert foi.outer.is_simple()
            for hole in foi.holes:
                assert hole.is_simple()


class TestLemma1Robustness:
    @pytest.mark.parametrize("spacing", [0.5, 1.0, 3.0, 10.0])
    def test_tradeoff_scale_invariant(self, spacing):
        """The Lemma-1 contradiction is geometric: it must hold at any
        lattice scale (with the communication range scaled along)."""
        ex = lemma1_example(spacing=spacing)
        assert ex.tradeoff_holds

    def test_identity_not_optimal_distance(self):
        ex = lemma1_example()
        # Sanity on the construction: the Hungarian really found a
        # strictly cheaper, different permutation.
        assert not np.array_equal(
            ex.min_distance_assignment, ex.link_preserving_assignment
        )
        assert ex.min_distance < ex.preserving_distance - 1e-9
