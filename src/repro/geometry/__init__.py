"""Planar geometry kernel underpinning every other subsystem.

Everything here is dependency-light (numpy only) and deterministic;
scipy is deliberately not imported so the kernel stays usable as an
independent oracle in tests.
"""

from repro.geometry.barycentric import (
    barycentric_coords,
    barycentric_coords_many,
    barycentric_coords_paired,
    from_barycentric,
    point_in_triangle,
    triangle_area,
)
from repro.geometry.clipping import bounding_box_polygon, clip_convex, clip_halfplane
from repro.geometry.hull import convex_hull
from repro.geometry.pointlocate import TriangleLocator
from repro.geometry.polygon import Polygon, polygon_centroid, signed_area
from repro.geometry.segment import (
    on_segment,
    orientation,
    point_segment_distance,
    project_point_on_segment,
    segment_intersection_point,
    segments_intersect,
    segments_properly_cross,
)
from repro.geometry.vec import (
    angle_of,
    as_point,
    as_points,
    cross2,
    distance,
    dot2,
    lerp,
    norm,
    normalize,
    pairwise_distances,
    perpendicular,
    polyline_length,
    rotate,
    rotation_matrix,
)

__all__ = [
    "Polygon",
    "TriangleLocator",
    "angle_of",
    "as_point",
    "as_points",
    "barycentric_coords",
    "barycentric_coords_many",
    "barycentric_coords_paired",
    "bounding_box_polygon",
    "clip_convex",
    "clip_halfplane",
    "convex_hull",
    "cross2",
    "distance",
    "dot2",
    "from_barycentric",
    "lerp",
    "norm",
    "normalize",
    "on_segment",
    "orientation",
    "pairwise_distances",
    "perpendicular",
    "point_in_triangle",
    "point_segment_distance",
    "polygon_centroid",
    "polyline_length",
    "project_point_on_segment",
    "rotate",
    "rotation_matrix",
    "segment_intersection_point",
    "segments_intersect",
    "segments_properly_cross",
    "signed_area",
    "triangle_area",
]
