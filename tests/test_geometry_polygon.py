"""Unit and property tests for the Polygon type."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import GeometryError
from repro.geometry import Polygon, polygon_centroid, signed_area


def regular(n, r=1.0, phase=0.0):
    theta = np.linspace(0, 2 * np.pi, n, endpoint=False) + phase
    return np.column_stack([r * np.cos(theta), r * np.sin(theta)])


class TestConstruction:
    def test_ccw_normalisation(self):
        cw = [(0, 0), (0, 1), (1, 1), (1, 0)]
        poly = Polygon(cw)
        assert signed_area(poly.vertices) > 0

    def test_duplicate_vertices_dropped(self):
        poly = Polygon([(0, 0), (0, 0), (1, 0), (1, 1), (1, 1)])
        assert len(poly) == 3

    def test_too_few_vertices(self):
        with pytest.raises(GeometryError):
            Polygon([(0, 0), (1, 1)])

    def test_zero_area_rejected(self):
        with pytest.raises(GeometryError):
            Polygon([(0, 0), (1, 1), (2, 2)])

    def test_vertices_read_only(self, unit_square):
        with pytest.raises(ValueError):
            unit_square.vertices[0, 0] = 99.0


class TestAreaCentroidPerimeter:
    def test_unit_square(self, unit_square):
        assert unit_square.area == pytest.approx(1.0)
        assert np.allclose(unit_square.centroid, [0.5, 0.5])
        assert unit_square.perimeter == pytest.approx(4.0)

    def test_triangle(self):
        tri = Polygon([(0, 0), (4, 0), (0, 3)])
        assert tri.area == pytest.approx(6.0)
        assert np.allclose(tri.centroid, [4 / 3, 1.0])

    def test_regular_polygon_area_formula(self):
        n, r = 12, 2.5
        poly = Polygon(regular(n, r))
        expected = 0.5 * n * r * r * np.sin(2 * np.pi / n)
        assert poly.area == pytest.approx(expected)

    def test_centroid_translation_equivariance(self):
        poly = Polygon(regular(7, 3.0))
        moved = poly.translated([10.0, -4.0])
        assert np.allclose(moved.centroid, poly.centroid + [10.0, -4.0])

    def test_l_shape_area(self, concave_polygon):
        assert concave_polygon.area == pytest.approx(3.0)


class TestContains:
    def test_center_inside(self, unit_square):
        assert unit_square.contains([0.5, 0.5])

    def test_outside(self, unit_square):
        assert not unit_square.contains([1.5, 0.5])

    def test_boundary_included_by_default(self, unit_square):
        assert unit_square.contains([1.0, 0.5])
        assert unit_square.contains([0.0, 0.0])

    def test_boundary_excluded_when_asked(self, unit_square):
        assert not unit_square.contains([1.0, 0.5], include_boundary=False)

    def test_vectorised(self, unit_square):
        pts = [[0.5, 0.5], [2.0, 2.0], [0.1, 0.9]]
        assert unit_square.contains(pts).tolist() == [True, False, True]

    def test_concave_notch(self, concave_polygon):
        assert concave_polygon.contains([0.5, 1.5])
        assert not concave_polygon.contains([1.5, 1.5])

    @given(st.floats(0.01, 0.99), st.floats(0.01, 0.99))
    def test_interior_grid(self, x, y):
        square = Polygon([(0, 0), (1, 0), (1, 1), (0, 1)])
        assert square.contains([x, y])

    def test_centroid_inside_for_convex(self):
        poly = Polygon(regular(9, 4.0, phase=0.3))
        assert poly.contains(poly.centroid)


class TestBoundaryDistance:
    def test_interior_point(self, unit_square):
        assert unit_square.boundary_distance([0.5, 0.5]) == pytest.approx(0.5)

    def test_exterior_point(self, unit_square):
        assert unit_square.boundary_distance([2.0, 0.5]) == pytest.approx(1.0)

    def test_vectorised_matches_scalar(self, concave_polygon, rng):
        pts = rng.uniform(-1, 3, (25, 2))
        vec = concave_polygon.boundary_distances(pts)
        for p, d in zip(pts, vec):
            assert d == pytest.approx(concave_polygon.boundary_distance(p), abs=1e-9)


class TestConvexitySimplicity:
    def test_square_is_convex(self, unit_square):
        assert unit_square.is_convex

    def test_l_shape_not_convex(self, concave_polygon):
        assert not concave_polygon.is_convex

    def test_l_shape_is_simple(self, concave_polygon):
        assert concave_polygon.is_simple()

    def test_bowtie_not_simple(self):
        # Edges (4,0)-(1,2) and (3,2)-(0,0) properly cross at (2, 4/3),
        # yet the shoelace area is nonzero so construction succeeds.
        bowtie = Polygon([(0, 0), (4, 0), (1, 2), (3, 2)])
        assert not bowtie.is_simple()


class TestTransforms:
    def test_scaled_to_area(self):
        poly = Polygon(regular(16, 1.0)).scaled_to_area(555.0)
        assert poly.area == pytest.approx(555.0)

    def test_scale_rejects_nonpositive(self, unit_square):
        with pytest.raises(GeometryError):
            unit_square.scaled(0.0)

    def test_rotation_preserves_area(self):
        poly = Polygon(regular(5, 2.0))
        assert poly.rotated(1.1).area == pytest.approx(poly.area)

    @given(st.floats(0.1, 10.0))
    @settings(max_examples=25)
    def test_scaling_scales_area_quadratically(self, factor):
        poly = Polygon(regular(6, 1.0))
        assert poly.scaled(factor).area == pytest.approx(poly.area * factor**2)


class TestSampling:
    def test_sample_boundary_count_and_membership(self, unit_square):
        pts = unit_square.sample_boundary(40)
        assert len(pts) == 40
        assert all(unit_square.boundary_distance(p) < 1e-9 for p in pts)

    def test_sample_boundary_uniform_spacing(self, unit_square):
        pts = unit_square.sample_boundary(8)
        # Every sample half a unit apart along the perimeter of length 4.
        gaps = np.hypot(*(np.roll(pts, -1, axis=0) - pts).T)
        assert np.allclose(gaps, 0.5)

    def test_grid_points_inside(self, concave_polygon):
        pts = concave_polygon.grid_points(0.2)
        assert len(pts) > 0
        assert concave_polygon.contains(pts).all()

    def test_grid_margin_respected(self, unit_square):
        pts = unit_square.grid_points(0.1, include_boundary_margin=0.3)
        assert all(unit_square.boundary_distance(p) >= 0.3 - 1e-12 for p in pts)

    def test_grid_rejects_bad_spacing(self, unit_square):
        with pytest.raises(GeometryError):
            unit_square.grid_points(0.0)

    def test_grid_density_scales(self, unit_square):
        coarse = unit_square.grid_points(0.25)
        fine = unit_square.grid_points(0.1)
        assert len(fine) > len(coarse)


class TestModuleFunctions:
    def test_signed_area_orientation(self):
        sq = [(0, 0), (1, 0), (1, 1), (0, 1)]
        assert signed_area(sq) == pytest.approx(1.0)
        assert signed_area(sq[::-1]) == pytest.approx(-1.0)

    def test_polygon_centroid_degenerate_falls_back(self):
        c = polygon_centroid([(0, 0), (1, 1), (2, 2)])
        assert np.allclose(c, [1.0, 1.0])

    def test_centroid_empty_raises(self):
        with pytest.raises(GeometryError):
            polygon_centroid(np.zeros((0, 2)))
