"""Mid-transition replanning after robot failures.

The paper motivates ANR systems as "more reliable since the failure of
an individual robot can be recovered by its peers", and the global-
connectivity requirement exists precisely so the survivors can
coordinate a new plan mid-march ("the ANRs must cooperatively determine
how to adapt to the event.  If an ANR is isolated at this time, it may
be excluded from the new plan and thus become permanently lost").

:func:`replan_after_failure` implements that recovery: freeze the
transition at the failure instant, drop the failed robots, verify the
survivors still form a connected network (they do whenever the original
plan's Definition-2 guarantee held and the failures don't cut the
graph), and plan a fresh marching transition for the survivors from
their current positions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.coverage.density import DensityFunction
from repro.errors import PlanningError
from repro.foi.region import FieldOfInterest
from repro.marching.planner import MarchingConfig, MarchingPlanner
from repro.marching.result import MarchingResult
from repro.network.udg import UnitDiskGraph
from repro.robots.swarm import Swarm

__all__ = [
    "CascadeOutcome",
    "FailureEvent",
    "ReplanOutcome",
    "replan_after_failure",
    "validate_failure_sequence",
]


@dataclass(frozen=True)
class FailureEvent:
    """Robots failing at one instant of a transition.

    Attributes
    ----------
    time : float
        Failure instant within the original trajectory's time span.
    failed : tuple[int, ...]
        Robot indices (original numbering) that died.
    """

    time: float
    failed: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(set(self.failed)) != len(self.failed):
            raise PlanningError("duplicate robot ids in failure event")


@dataclass(frozen=True)
class ReplanOutcome:
    """Result of a mid-transition recovery.

    Attributes
    ----------
    event : FailureEvent
    survivor_ids : (k,) int ndarray
        Original indices of the surviving robots, in the order used by
        ``result`` (survivor ``i`` in the new plan is original robot
        ``survivor_ids[i]``).
    positions_at_failure : (k, 2) ndarray
        Survivor positions at the failure instant.
    survivors_connected : bool
        Whether the surviving network was connected when it replanned.
    result : MarchingResult
        The survivors' fresh plan into the target FoI.
    """

    event: FailureEvent
    survivor_ids: np.ndarray
    positions_at_failure: np.ndarray
    survivors_connected: bool
    result: MarchingResult


@dataclass(frozen=True)
class CascadeOutcome:
    """Result of recovering from an ordered *sequence* of failures.

    Each step replans the previous step's survivors, so the sequence
    models the cascading-failure regime: the swarm freezes at every
    failure instant, drops the newly dead, and marches on under a fresh
    plan.

    Attributes
    ----------
    steps : tuple of ReplanOutcome
        One entry per failure event, in time order.  Step ``k``'s
        ``survivor_ids`` are indices into step ``k-1``'s plan (the
        numbering each replan actually worked in).
    survivor_ids : (k,) int ndarray
        Final survivors in the *original* numbering.
    result : MarchingResult
        The last step's plan - the one the final survivors execute.
    """

    steps: tuple[ReplanOutcome, ...]
    survivor_ids: np.ndarray
    result: MarchingResult

    @property
    def replan_count(self) -> int:
        return len(self.steps)


def validate_failure_sequence(
    events: Sequence[FailureEvent], t_start: float, t_end: float
) -> tuple[FailureEvent, ...]:
    """Check an ordered failure sequence against a plan's time span.

    Times must be strictly increasing and inside ``[t_start, t_end]``
    (an event after ``T`` describes a failure that never happened
    during the transition); no robot may die twice.

    Raises
    ------
    PlanningError
        On an empty, unordered, out-of-range or duplicated sequence.
    """
    events = tuple(events)
    if not events:
        raise PlanningError("failure sequence must contain at least one event")
    dead: set[int] = set()
    previous = None
    for event in events:
        if previous is not None and event.time <= previous:
            raise PlanningError(
                "failure times must be strictly increasing: "
                f"{event.time} follows {previous}"
            )
        if not (t_start <= event.time <= t_end):
            raise PlanningError(
                f"failure time {event.time} outside [{t_start}, {t_end}]"
            )
        again = dead.intersection(event.failed)
        if again:
            raise PlanningError(
                f"robots {sorted(again)} already failed in an earlier event"
            )
        dead.update(event.failed)
        previous = event.time
    return events


def replan_after_failure(
    original: MarchingResult,
    event: FailureEvent | Sequence[FailureEvent],
    target_foi: FieldOfInterest,
    comm_range: float,
    config: MarchingConfig | None = None,
    density: DensityFunction | None = None,
    require_connected: bool = True,
) -> ReplanOutcome | CascadeOutcome:
    """Recover from robot failures by replanning the survivors' march.

    Parameters
    ----------
    original : MarchingResult
        The plan being executed when the failure happened.
    event : FailureEvent or ordered sequence of FailureEvent
        A single event recovers exactly as before and returns a
        :class:`ReplanOutcome`.  A sequence (times strictly increasing,
        robot ids in the original numbering, every event no later than
        the original plan's ``T``) is recovered *cascadingly* - each
        event freezes and replans the previous survivors' plan - and
        returns a :class:`CascadeOutcome`.  A later event's time is
        mapped proportionally onto the current plan: the remaining
        window of the original timeline stretches over the fresh plan's
        full span.
    target_foi : FieldOfInterest
        The destination (unchanged by the failure).
    comm_range : float
    config : MarchingConfig, optional
        Planner settings for the new plan.
    density : DensityFunction, optional
    require_connected : bool
        When True (default), raise if the failures disconnected the
        surviving network - the situation the paper's Definition-2
        guarantee exists to prevent.

    Raises
    ------
    PlanningError
        If no robots survive, a failure instant is outside the plan,
        the sequence is unordered or kills a robot twice, or (with
        ``require_connected``) the survivors are disconnected.
    """
    if not isinstance(event, FailureEvent):
        return _replan_cascade(
            original, event, target_foi, comm_range, config, density,
            require_connected,
        )
    traj = original.trajectory
    if not (traj.t_start <= event.time <= traj.t_end):
        raise PlanningError(
            f"failure time {event.time} outside [{traj.t_start}, {traj.t_end}]"
        )
    n = original.robot_count
    failed = set(int(i) for i in event.failed)
    if not all(0 <= i < n for i in failed):
        raise PlanningError("failed robot id out of range")
    survivors = np.array([i for i in range(n) if i not in failed], dtype=int)
    if len(survivors) < 4:
        raise PlanningError("too few survivors to replan a marching problem")

    snapshot = traj.positions_at(event.time)
    positions = snapshot[survivors]
    graph = UnitDiskGraph(positions, comm_range)
    connected = graph.is_connected()
    if not connected:
        if require_connected:
            raise PlanningError(
                "survivors are disconnected at the failure instant; "
                "largest component holds "
                f"{len(graph.components[0])}/{len(survivors)} robots"
            )
        # The paper's warning made concrete: robots cut off from the
        # main network "may be excluded from the new plan and thus
        # become permanently lost".  Replan the largest component only.
        main = np.asarray(graph.components[0], dtype=int)
        survivors = survivors[main]
        positions = positions[main]

    from repro.robots.robot import RadioSpec

    radio = RadioSpec.from_comm_range(comm_range)
    swarm = Swarm(positions, radio)
    planner = MarchingPlanner(config or MarchingConfig())
    result = planner.plan(swarm, target_foi, density=density)
    return ReplanOutcome(
        event=event,
        survivor_ids=survivors,
        positions_at_failure=positions,
        survivors_connected=connected,
        result=result,
    )


def _remap_event_time(
    event_time: float,
    window_start: float,
    window_end: float,
    span_start: float,
    span_end: float,
) -> float:
    """Map an original-timeline instant onto the current plan's span.

    The remaining window ``[window_start, window_end]`` of the original
    timeline stretches proportionally over the fresh plan's full span.
    Two degenerate shapes need explicit handling:

    * a *zero-length remaining window* (``window_end <= window_start``,
      e.g. a cascade whose previous failure froze the plan exactly at
      ``T``, or a zero-duration trajectory): the march is over, so the
      event observes the plan's *final* positions - the fraction is 1,
      not 0 (mapping to the fresh plan's start would rewind survivors
      to positions they already left);
    * an event *exactly at* the window end (mission fraction 1.0):
      the proportional fraction is clamped into ``[0, 1]`` so float
      round-off can never push the local instant outside the span.
    """
    remaining = window_end - window_start
    if remaining <= 0.0:
        frac = 1.0
    else:
        frac = (event_time - window_start) / remaining
        frac = min(1.0, max(0.0, frac))
    return span_start + frac * (span_end - span_start)


def _replan_cascade(
    original: MarchingResult,
    events: Sequence[FailureEvent],
    target_foi: FieldOfInterest,
    comm_range: float,
    config: MarchingConfig | None,
    density: DensityFunction | None,
    require_connected: bool,
) -> CascadeOutcome:
    """Apply an ordered failure sequence, one replan per event."""
    traj = original.trajectory
    events = validate_failure_sequence(events, traj.t_start, traj.t_end)
    n = original.robot_count
    if not all(0 <= int(i) < n for ev in events for i in ev.failed):
        raise PlanningError("failed robot id out of range")

    steps: list[ReplanOutcome] = []
    current = original
    alive = np.arange(n)  # original ids, in the current plan's order
    window_start = traj.t_start  # original-timeline instant of the
    # current plan's t_start (the previous failure time after a replan)
    for ev in events:
        span = current.trajectory
        local_time = _remap_event_time(
            ev.time, window_start, traj.t_end, span.t_start, span.t_end
        )
        id_to_local = {int(orig): k for k, orig in enumerate(alive)}
        local_failed = tuple(
            sorted(id_to_local[int(i)] for i in ev.failed if int(i) in id_to_local)
        )
        # validate_failure_sequence rejected double deaths, so every
        # failed id is still alive here.
        local_event = FailureEvent(time=local_time, failed=local_failed)
        step = replan_after_failure(
            current, local_event, target_foi, comm_range,
            config=config, density=density,
            require_connected=require_connected,
        )
        steps.append(step)
        alive = alive[step.survivor_ids]
        current = step.result
        window_start = ev.time
    return CascadeOutcome(
        steps=tuple(steps), survivor_ids=alive, result=current
    )
