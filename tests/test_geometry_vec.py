"""Unit tests for the vector helpers."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import GeometryError
from repro.geometry import (
    angle_of,
    as_point,
    as_points,
    cross2,
    distance,
    dot2,
    lerp,
    norm,
    normalize,
    pairwise_distances,
    perpendicular,
    polyline_length,
    rotate,
    rotation_matrix,
)

finite = st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False)


class TestAsPoint:
    def test_accepts_lists_tuples_arrays(self):
        for raw in ([1, 2], (1.0, 2.0), np.array([1.0, 2.0])):
            p = as_point(raw)
            assert p.shape == (2,)
            assert p.dtype == np.float64

    def test_rejects_wrong_shape(self):
        with pytest.raises(GeometryError):
            as_point([1.0, 2.0, 3.0])
        with pytest.raises(GeometryError):
            as_point([[1.0, 2.0]])

    def test_rejects_nan(self):
        with pytest.raises(GeometryError):
            as_point([np.nan, 0.0])

    def test_rejects_inf(self):
        with pytest.raises(GeometryError):
            as_point([np.inf, 0.0])


class TestAsPoints:
    def test_empty_input_gives_0x2(self):
        assert as_points([]).shape == (0, 2)

    def test_normal_input(self):
        pts = as_points([[0, 0], [1, 1]])
        assert pts.shape == (2, 2)

    def test_rejects_bad_shape(self):
        with pytest.raises(GeometryError):
            as_points([[1, 2, 3]])

    def test_rejects_nonfinite(self):
        with pytest.raises(GeometryError):
            as_points([[1.0, np.nan]])


class TestCrossDot:
    def test_cross_right_hand(self):
        assert cross2([1, 0], [0, 1]) == pytest.approx(1.0)
        assert cross2([0, 1], [1, 0]) == pytest.approx(-1.0)

    def test_cross_parallel_is_zero(self):
        assert cross2([2, 2], [1, 1]) == pytest.approx(0.0)

    def test_dot(self):
        assert dot2([1, 2], [3, 4]) == pytest.approx(11.0)

    @given(finite, finite, finite, finite)
    def test_cross_antisymmetric(self, ax, ay, bx, by):
        a, b = [ax, ay], [bx, by]
        assert cross2(a, b) == pytest.approx(-cross2(b, a), abs=1e-3)


class TestNormNormalize:
    def test_norm_345(self):
        assert norm([3, 4]) == pytest.approx(5.0)

    def test_normalize_unit(self):
        v = normalize([3, 4])
        assert norm(v) == pytest.approx(1.0)

    def test_normalize_zero_raises(self):
        with pytest.raises(GeometryError):
            normalize([0.0, 0.0])


class TestDistances:
    def test_distance(self):
        assert distance([0, 0], [3, 4]) == pytest.approx(5.0)

    def test_pairwise_self(self):
        pts = [[0, 0], [1, 0], [0, 1]]
        d = pairwise_distances(pts)
        assert d.shape == (3, 3)
        assert np.allclose(np.diag(d), 0.0)
        assert d[1, 2] == pytest.approx(np.sqrt(2))

    def test_pairwise_cross(self):
        d = pairwise_distances([[0, 0]], [[3, 4], [6, 8]])
        assert d.shape == (1, 2)
        assert np.allclose(d, [[5.0, 10.0]])

    @given(st.lists(st.tuples(finite, finite), min_size=1, max_size=8))
    def test_pairwise_symmetric_nonnegative(self, pts):
        d = pairwise_distances(pts)
        assert np.all(d >= 0)
        assert np.allclose(d, d.T)


class TestRotate:
    def test_rotation_matrix_orthogonal(self):
        r = rotation_matrix(0.7)
        assert np.allclose(r @ r.T, np.eye(2))

    def test_quarter_turn(self):
        assert np.allclose(rotate([1.0, 0.0], np.pi / 2), [0.0, 1.0], atol=1e-12)

    def test_rotate_about_center(self):
        out = rotate([2.0, 1.0], np.pi, center=[1.0, 1.0])
        assert np.allclose(out, [0.0, 1.0], atol=1e-12)

    def test_rotate_array_shape_preserved(self):
        pts = np.array([[1.0, 0.0], [0.0, 1.0]])
        out = rotate(pts, 0.3)
        assert out.shape == pts.shape

    @given(st.floats(-10, 10), finite, finite)
    def test_rotation_preserves_norm(self, theta, x, y):
        assert norm(rotate([x, y], theta)) == pytest.approx(norm([x, y]), abs=1e-6)


class TestMisc:
    def test_perpendicular(self):
        assert np.allclose(perpendicular([1.0, 0.0]), [0.0, 1.0])
        assert dot2([2.0, 3.0], perpendicular([2.0, 3.0])) == pytest.approx(0.0)

    def test_lerp_endpoints(self):
        assert np.allclose(lerp([0, 0], [2, 4], 0.0), [0, 0])
        assert np.allclose(lerp([0, 0], [2, 4], 1.0), [2, 4])
        assert np.allclose(lerp([0, 0], [2, 4], 0.5), [1, 2])

    def test_polyline_length(self):
        assert polyline_length([[0, 0], [3, 4], [3, 5]]) == pytest.approx(6.0)
        assert polyline_length([[1, 1]]) == 0.0

    def test_angle_of_quadrants(self):
        assert angle_of([1, 0]) == pytest.approx(0.0)
        assert angle_of([0, 1]) == pytest.approx(np.pi / 2)
        assert angle_of([-1, 0]) == pytest.approx(np.pi)
        assert angle_of([0, -1]) == pytest.approx(3 * np.pi / 2)
