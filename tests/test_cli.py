"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_scenario_args(self):
        args = build_parser().parse_args(["scenario", "3", "--separation", "15"])
        assert args.scenario_id == 3
        assert args.separation == 15.0

    def test_scenario_id_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scenario", "9"])

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep", "1"])
        assert args.separations == [10.0, 40.0, 70.0, 100.0]
        assert args.figures is None


class TestCommands:
    def test_lemmas_command(self, capsys):
        assert main(["lemmas"]) == 0
        out = capsys.readouterr().out
        assert "Lemma 1" in out
        assert "Lemma 2" in out

    def test_scenario_command(self, capsys):
        code = main(["scenario", "1", "--separation", "12", "--points", "220"])
        assert code == 0
        out = capsys.readouterr().out
        assert "ours (a)" in out
        assert "Hungarian" in out

    def test_sweep_with_figures(self, capsys, tmp_path):
        code = main([
            "sweep", "1",
            "--separations", "12", "30",
            "--figures", str(tmp_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Scenario 1" in out
        assert (tmp_path / "scenario1_distance_ratio.svg").exists()
        assert (tmp_path / "scenario1_stable_links.svg").exists()
