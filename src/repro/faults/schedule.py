"""Declarative, seeded fault schedules.

A :class:`FaultSchedule` lists everything that will go wrong during one
marching transition, with every instant expressed as a *mission
fraction* in ``[0, 1)`` - the fraction of the currently executing plan
still ahead is rescaled after each recovery, so a schedule remains
meaningful across replans.  Schedules are plain frozen data: building
one never touches an RNG unless a builder is asked to randomise, and
then only through its explicit ``seed``, so a given schedule reproduces
the exact same run.

The archetype builders cover the regimes the related work treats as
primary (Varadharajan et al., Majcherczyk et al.): a single crash, a
clustered crash (a whole neighbourhood dies at once - the case that can
cut the survivor network), a cascade of crashes at multiple instants,
stuck robots plus a crash, and a message storm where the recovery
consensus itself runs over faulty links.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from repro.distributed.runtime import LinkFaults
from repro.errors import PlanningError

__all__ = [
    "ARCHETYPES",
    "CrashFault",
    "FaultSchedule",
    "SlowFault",
    "StuckFault",
    "build_archetype_schedule",
    "random_schedule",
    "schedule_from_dict",
]


def _check_fraction(name: str, value: float) -> None:
    if not 0.0 <= value < 1.0:
        raise PlanningError(f"{name} must be a mission fraction in [0, 1), got {value}")


@dataclass(frozen=True)
class CrashFault:
    """Robots dying permanently at one instant.

    Attributes
    ----------
    at : float
        Mission fraction of the failure instant.
    robots : tuple[int, ...]
        Robot indices in the *original* numbering.  Ids that already
        died earlier in the schedule are ignored by the executor (the
        strict single-call API in :mod:`repro.marching.replan` rejects
        them instead).
    """

    at: float
    robots: tuple[int, ...]

    def __post_init__(self) -> None:
        _check_fraction("crash time", self.at)
        object.__setattr__(self, "robots", tuple(int(i) for i in self.robots))
        if not self.robots:
            raise PlanningError("a crash fault needs at least one robot")
        if len(set(self.robots)) != len(self.robots):
            raise PlanningError("duplicate robot ids in crash fault")


@dataclass(frozen=True)
class StuckFault:
    """Robots that stop dead for a while (an actuator stall).

    The executor's policy is conservative: peers hold position until
    the stuck robots move again, so connectivity is untouched and the
    whole fault costs recovery *time*, not distance.

    Attributes
    ----------
    at : float
        Mission fraction at which the robots freeze.
    robots : tuple[int, ...]
    duration : float
        Hold length as a fraction of the nominal mission duration.
    """

    at: float
    robots: tuple[int, ...]
    duration: float

    def __post_init__(self) -> None:
        _check_fraction("stuck time", self.at)
        object.__setattr__(self, "robots", tuple(int(i) for i in self.robots))
        if not self.robots:
            raise PlanningError("a stuck fault needs at least one robot")
        if self.duration <= 0:
            raise PlanningError("stuck duration must be positive")


@dataclass(frozen=True)
class SlowFault:
    """Robots moving below nominal speed for a window.

    The synchronous march slows the whole swarm to the slowest member
    (Eqn. 2 keeps all arrivals simultaneous), so the fault dilates the
    window by ``1 / factor`` and costs recovery time.

    Attributes
    ----------
    at : float
    robots : tuple[int, ...]
    factor : float
        Speed multiplier in ``(0, 1]``.
    duration : float
        Window length as a fraction of the nominal mission duration.
    """

    at: float
    robots: tuple[int, ...]
    factor: float
    duration: float

    def __post_init__(self) -> None:
        _check_fraction("slow time", self.at)
        object.__setattr__(self, "robots", tuple(int(i) for i in self.robots))
        if not self.robots:
            raise PlanningError("a slow fault needs at least one robot")
        if not 0.0 < self.factor <= 1.0:
            raise PlanningError("slow factor must be in (0, 1]")
        if self.duration <= 0:
            raise PlanningError("slow duration must be positive")


@dataclass(frozen=True)
class FaultSchedule:
    """Everything that goes wrong during one transition, declaratively.

    Attributes
    ----------
    seed : int
        Seed for every random process the schedule triggers (recovery
        consensus message faults); builders also derive their random
        choices from it.
    crashes, stucks, slows : tuples of faults
        Each ordered by strictly increasing ``at``; instants must be
        unique across *all* fault kinds so the executor has a total
        event order.
    comms : LinkFaults, optional
        Message-level faults applied to every recovery consensus the
        executor runs (loss, delay, duplication, per-edge loss).
    name : str
        Optional label carried into reports.
    """

    seed: int = 0
    crashes: tuple[CrashFault, ...] = ()
    stucks: tuple[StuckFault, ...] = ()
    slows: tuple[SlowFault, ...] = ()
    comms: LinkFaults | None = None
    name: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "crashes", tuple(self.crashes))
        object.__setattr__(self, "stucks", tuple(self.stucks))
        object.__setattr__(self, "slows", tuple(self.slows))
        instants = [f.at for f in self.events()]
        if any(b <= a for a, b in zip(instants, instants[1:])):
            raise PlanningError(
                "fault instants must be unique and strictly increasing "
                f"across all kinds, got {instants}"
            )

    def events(self) -> tuple[Any, ...]:
        """All faults merged into one time-ordered tuple."""
        return tuple(
            sorted(
                [*self.crashes, *self.stucks, *self.slows],
                key=lambda f: f.at,
            )
        )

    @property
    def crashed_ids(self) -> tuple[int, ...]:
        """Every robot id some crash fault names, sorted."""
        ids: set[int] = set()
        for crash in self.crashes:
            ids.update(crash.robots)
        return tuple(sorted(ids))

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON description (for chaos summary documents)."""
        doc: dict[str, Any] = {
            "seed": self.seed,
            "name": self.name,
            "crashes": [
                {"at": c.at, "robots": list(c.robots)} for c in self.crashes
            ],
            "stucks": [
                {"at": s.at, "robots": list(s.robots), "duration": s.duration}
                for s in self.stucks
            ],
            "slows": [
                {
                    "at": s.at,
                    "robots": list(s.robots),
                    "factor": s.factor,
                    "duration": s.duration,
                }
                for s in self.slows
            ],
        }
        if self.comms is not None:
            doc["comms"] = {
                "loss_rate": self.comms.loss_rate,
                "delay_rate": self.comms.delay_rate,
                "max_delay": self.comms.max_delay,
                "duplication_rate": self.comms.duplication_rate,
            }
        return doc


def schedule_from_dict(data: dict[str, Any]) -> FaultSchedule:
    """Rebuild a :class:`FaultSchedule` from its :meth:`~FaultSchedule.to_dict`.

    This is the wire direction: mission requests carry their fault
    schedule as plain JSON, and the service reconstructs (and thereby
    re-validates) the schedule before running.

    Raises
    ------
    PlanningError
        On a malformed document or invalid fault parameters.
    """
    if not isinstance(data, dict):
        raise PlanningError("fault schedule document must be a JSON object")
    try:
        comms_doc = data.get("comms")
        comms = None if comms_doc is None else LinkFaults(
            loss_rate=float(comms_doc.get("loss_rate", 0.0)),
            delay_rate=float(comms_doc.get("delay_rate", 0.0)),
            max_delay=int(comms_doc.get("max_delay", 0)),
            duplication_rate=float(comms_doc.get("duplication_rate", 0.0)),
        )
        return FaultSchedule(
            seed=int(data.get("seed", 0)),
            crashes=tuple(
                CrashFault(
                    at=float(c["at"]),
                    robots=tuple(int(r) for r in c["robots"]),
                )
                for c in data.get("crashes", [])
            ),
            stucks=tuple(
                StuckFault(
                    at=float(s["at"]),
                    robots=tuple(int(r) for r in s["robots"]),
                    duration=float(s["duration"]),
                )
                for s in data.get("stucks", [])
            ),
            slows=tuple(
                SlowFault(
                    at=float(s["at"]),
                    robots=tuple(int(r) for r in s["robots"]),
                    factor=float(s["factor"]),
                    duration=float(s["duration"]),
                )
                for s in data.get("slows", [])
            ),
            name=str(data.get("name", "")),
            comms=comms,
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise PlanningError(f"malformed fault schedule document: {exc}") from exc


# ----------------------------------------------------------------------
# Archetype builders


ARCHETYPES = ("single", "cluster", "cascade", "stuck", "storm")


def _nearest_cluster(
    positions: np.ndarray, center: int, size: int
) -> tuple[int, ...]:
    """``center`` plus its ``size - 1`` nearest robots (deterministic)."""
    delta = positions - positions[center]
    dist = np.hypot(delta[:, 0], delta[:, 1])
    order = np.lexsort((np.arange(len(positions)), dist))
    return tuple(int(i) for i in order[:size])


def build_archetype_schedule(
    archetype: str,
    positions: np.ndarray,
    seed: int = 0,
    name: str = "",
) -> FaultSchedule:
    """Instantiate one of the named fault regimes for a concrete swarm.

    Parameters
    ----------
    archetype : str
        One of :data:`ARCHETYPES`:

        * ``"single"`` - one robot dies mid-march.
        * ``"cluster"`` - a robot and its nearest neighbours die
          together (the case that can cut the survivor network).
        * ``"cascade"`` - three separate crash instants.
        * ``"stuck"`` - robots stall, then one crashes.
        * ``"storm"`` - cascading crashes while every recovery
          consensus runs over lossy, delaying, duplicating links.
    positions : (n, 2) ndarray
        Start positions (used to pick geometric clusters).
    seed : int
        Drives every random choice; same seed, same schedule.
    name : str
        Label for reports (defaults to the archetype).
    """
    positions = np.asarray(positions, dtype=float)
    n = len(positions)
    if n < 6:
        raise PlanningError("archetype schedules need at least 6 robots")
    # str seeding is deterministic across processes (unlike tuple
    # seeding, which goes through the salted hash()).
    rng = random.Random(f"{seed}:{archetype}")
    pick = lambda: rng.randrange(n)  # noqa: E731
    label = name or archetype
    if archetype == "single":
        return FaultSchedule(
            seed=seed, name=label,
            crashes=(CrashFault(at=0.4, robots=(pick(),)),),
        )
    if archetype == "cluster":
        size = min(3 + rng.randrange(2), n // 4 + 1)
        cluster = _nearest_cluster(positions, pick(), max(size, 2))
        return FaultSchedule(
            seed=seed, name=label,
            crashes=(CrashFault(at=0.35, robots=cluster),),
        )
    if archetype == "cascade":
        crashes = []
        for at in (0.2, 0.45, 0.7):
            count = 1 + rng.randrange(2)
            picks = tuple(sorted({pick() for _ in range(count)}))
            crashes.append(CrashFault(at=at, robots=picks))
        return FaultSchedule(seed=seed, name=label, crashes=tuple(crashes))
    if archetype == "stuck":
        stuck = tuple(sorted({pick(), pick()}))
        return FaultSchedule(
            seed=seed, name=label,
            stucks=(StuckFault(at=0.25, robots=stuck, duration=0.15),),
            crashes=(CrashFault(at=0.6, robots=(pick(),)),),
        )
    if archetype == "storm":
        return FaultSchedule(
            seed=seed, name=label,
            crashes=(
                CrashFault(at=0.3, robots=(pick(),)),
                CrashFault(at=0.65, robots=(pick(),)),
            ),
            comms=LinkFaults(
                loss_rate=0.2,
                delay_rate=0.2,
                max_delay=2,
                duplication_rate=0.15,
            ),
        )
    raise PlanningError(
        f"unknown archetype {archetype!r}; expected one of {ARCHETYPES}"
    )


def random_schedule(
    robot_count: int,
    seed: int,
    max_events: int = 3,
    max_per_event: int = 4,
    comms: LinkFaults | None = None,
) -> FaultSchedule:
    """A fully random crash schedule (property-test workhorse).

    Crash instants are drawn uniformly and deduplicated; each event
    kills a random subset (which may overlap earlier events - the
    resilient executor treats re-deaths as no-ops).
    """
    if robot_count < 1:
        raise PlanningError("robot_count must be positive")
    rng = random.Random(seed)
    count = 1 + rng.randrange(max(1, max_events))
    instants = sorted({round(0.05 + 0.9 * rng.random(), 6) for _ in range(count)})
    crashes = []
    for at in instants:
        size = 1 + rng.randrange(max(1, max_per_event))
        robots = tuple(sorted({rng.randrange(robot_count) for _ in range(size)}))
        crashes.append(CrashFault(at=at, robots=robots))
    return FaultSchedule(
        seed=seed, crashes=tuple(crashes), comms=comms, name=f"random-{seed}"
    )
