"""Spatial index for point-in-triangle location queries.

The induced harmonic map must locate, for every robot, the grid
triangle of the target FoI's disk embedding that contains the robot's
(rotated) disk position.  A uniform bucket grid over the triangle
bounding boxes turns each query into a handful of barycentric tests.

The bucket table is built with vectorised numpy (no per-triangle
Python loops), and :meth:`TriangleLocator.locate_many` /
:meth:`TriangleLocator.locate_nearest_many` answer *all* query points
of a batch in a handful of array operations - the swarm-scale path the
induced map uses.  The batch results are bitwise-identical to the
corresponding sequence of single-point calls.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GeometryError
from repro.geometry.barycentric import (
    barycentric_coords_many,
    barycentric_coords_paired,
)
from repro.geometry.vec import as_point, as_points

__all__ = ["TriangleLocator"]

# Row budget per chunk of the dense miss-recovery distance matrix.
_NEAREST_CHUNK_ELEMENTS = 4_000_000


def _expand_ragged(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Flat index array ``[s, s+1, .., s+c-1]`` per ``(s, c)`` row."""
    total = int(counts.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    offsets = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(counts) - counts, counts
    )
    return np.repeat(starts, counts) + offsets


class TriangleLocator:
    """Uniform-grid index over a set of triangles.

    Parameters
    ----------
    points : (n, 2) array-like
        Vertex coordinates.
    triangles : (m, 3) int array-like
        Vertex indices of each triangle.
    resolution : int
        Number of buckets per axis (default scales with triangle count).
    """

    def __init__(self, points, triangles, resolution: int | None = None) -> None:
        self.points = as_points(points)
        tris = np.asarray(triangles, dtype=int)
        if tris.size == 0:
            raise GeometryError("TriangleLocator needs at least one triangle")
        if tris.ndim != 2 or tris.shape[1] != 3:
            raise GeometryError(f"triangles must have shape (m, 3), got {tris.shape}")
        if tris.min() < 0 or tris.max() >= len(self.points):
            raise GeometryError("triangle indices out of range")
        self.triangles = tris
        self._ta = self.points[tris[:, 0]]
        self._tb = self.points[tris[:, 1]]
        self._tc = self.points[tris[:, 2]]
        self._centroids = (self._ta + self._tb + self._tc) / 3.0

        if resolution is None:
            resolution = max(4, int(np.sqrt(len(tris))))
        self._res = resolution
        xs = np.stack([self._ta[:, 0], self._tb[:, 0], self._tc[:, 0]])
        ys = np.stack([self._ta[:, 1], self._tb[:, 1], self._tc[:, 1]])
        self._xmin = float(xs.min())
        self._ymin = float(ys.min())
        xmax, ymax = float(xs.max()), float(ys.max())
        self._dx = max((xmax - self._xmin) / resolution, 1e-12)
        self._dy = max((ymax - self._ymin) / resolution, 1e-12)

        # Bucket span per triangle (bounding-box overlap), expanded to
        # one (bucket, triangle) entry per covered cell - all without a
        # Python loop over triangles.
        m = len(tris)
        lo_i = np.clip(((xs.min(axis=0) - self._xmin) / self._dx).astype(int), 0, resolution - 1)
        hi_i = np.clip(((xs.max(axis=0) - self._xmin) / self._dx).astype(int), 0, resolution - 1)
        lo_j = np.clip(((ys.min(axis=0) - self._ymin) / self._dy).astype(int), 0, resolution - 1)
        hi_j = np.clip(((ys.max(axis=0) - self._ymin) / self._dy).astype(int), 0, resolution - 1)
        wi = (hi_i - lo_i + 1).astype(np.int64)
        wj = (hi_j - lo_j + 1).astype(np.int64)
        span = wi * wj
        total = int(span.sum())
        tri_ids = np.repeat(np.arange(m, dtype=np.int64), span)
        local = np.arange(total, dtype=np.int64) - np.repeat(
            np.cumsum(span) - span, span
        )
        wj_exp = np.repeat(wj, span)
        cell_i = np.repeat(lo_i.astype(np.int64), span) + local // wj_exp
        cell_j = np.repeat(lo_j.astype(np.int64), span) + local % wj_exp
        cell_key = cell_i * resolution + cell_j
        order = np.argsort(cell_key, kind="stable")
        sorted_keys = cell_key[order]
        self._bucket_tris = tri_ids[order]
        self._bucket_keys, self._bucket_start, self._bucket_count = np.unique(
            sorted_keys, return_index=True, return_counts=True
        )
        self._buckets = {
            (int(k) // resolution, int(k) % resolution): self._bucket_tris[s:s + c]
            for k, s, c in zip(
                self._bucket_keys, self._bucket_start, self._bucket_count
            )
        }

    def _bucket_of(self, p: np.ndarray) -> tuple[int, int]:
        i = int(np.clip((p[0] - self._xmin) / self._dx, 0, self._res - 1))
        j = int(np.clip((p[1] - self._ymin) / self._dy, 0, self._res - 1))
        return i, j

    def locate(self, point, tol: float = 1e-9) -> tuple[int, np.ndarray] | None:
        """Triangle containing ``point`` and its barycentric coordinates.

        Returns
        -------
        (triangle_index, (3,) barycentric array) or ``None`` if the point
        lies in no triangle (outside the mesh, or in a hole).
        """
        p = as_point(point)
        cand = self._buckets.get(self._bucket_of(p))
        if cand is None or len(cand) == 0:
            return None
        bary = barycentric_coords_many(p, self._ta[cand], self._tb[cand], self._tc[cand])
        ok = np.all(bary >= -tol, axis=1) & ~np.any(np.isnan(bary), axis=1)
        hits = np.flatnonzero(ok)
        if len(hits) == 0:
            return None
        # Prefer the most interior hit for points on shared edges.
        best = hits[np.argmax(bary[hits].min(axis=1))]
        return int(cand[best]), bary[best]

    def locate_many(
        self, points, tol: float = 1e-9
    ) -> tuple[np.ndarray, np.ndarray]:
        """Batched :meth:`locate` over many query points.

        Returns
        -------
        (triangle_indices, barycentric) : ((k,) int ndarray, (k, 3) ndarray)
            Row ``q`` matches ``locate(points[q])``; misses are marked
            with triangle index ``-1`` and a ``nan`` barycentric row.
        """
        pts = as_points(points)
        k = len(pts)
        tri_out = np.full(k, -1, dtype=int)
        bary_out = np.full((k, 3), np.nan)
        if k == 0:
            return tri_out, bary_out

        bi = np.clip((pts[:, 0] - self._xmin) / self._dx, 0, self._res - 1).astype(int)
        bj = np.clip((pts[:, 1] - self._ymin) / self._dy, 0, self._res - 1).astype(int)
        key = bi.astype(np.int64) * self._res + bj
        g = np.searchsorted(self._bucket_keys, key)
        g_clip = np.minimum(g, len(self._bucket_keys) - 1)
        found = self._bucket_keys[g_clip] == key
        counts = np.where(found, self._bucket_count[g_clip], 0)
        total = int(counts.sum())
        if total == 0:
            return tri_out, bary_out

        query_ids = np.repeat(np.arange(k, dtype=np.int64), counts)
        cand = self._bucket_tris[
            _expand_ragged(np.where(found, self._bucket_start[g_clip], 0), counts)
        ]
        bary = barycentric_coords_paired(
            pts[query_ids], self._ta[cand], self._tb[cand], self._tc[cand]
        )
        ok = np.all(bary >= -tol, axis=1) & ~np.any(np.isnan(bary), axis=1)
        score = np.where(ok, np.where(ok[:, None], bary, 0.0).min(axis=1), -np.inf)

        # First index of the per-query maximum score: segment max, then
        # segment min of the positions attaining it (ties resolve to the
        # first candidate, matching np.argmax in the scalar path).
        has = counts > 0
        seg_starts = (np.cumsum(counts) - counts)[has]
        seg_max = np.maximum.reduceat(score, seg_starts)
        best_pos = np.where(
            ok & (score == np.repeat(seg_max, counts[has])),
            np.arange(total, dtype=np.int64),
            total,
        )
        first_best = np.minimum.reduceat(best_pos, seg_starts)
        hit = first_best < total
        rows = np.flatnonzero(has)[hit]
        sel = first_best[hit]
        tri_out[rows] = cand[sel]
        bary_out[rows] = bary[sel]
        return tri_out, bary_out

    def locate_nearest(self, point) -> tuple[int, np.ndarray]:
        """Like :meth:`locate` but never fails.

        If the point lies in no triangle, the triangle with the nearest
        centroid is chosen and the barycentric coordinates are clamped
        to the simplex (renormalised to sum to one), yielding the
        closest representable point.  This implements the paper's rule
        that a robot mapped into a hole "simply chooses the nearest grid
        point" - clamping selects the nearest point of the nearest
        triangle.
        """
        hit = self.locate(point)
        if hit is not None:
            return hit
        p = as_point(point)
        d = np.hypot(self._centroids[:, 0] - p[0], self._centroids[:, 1] - p[1])
        t = int(np.argmin(d))
        bary = barycentric_coords_many(
            p, self._ta[t : t + 1], self._tb[t : t + 1], self._tc[t : t + 1]
        )[0]
        if np.any(np.isnan(bary)):
            bary = np.array([1.0, 0.0, 0.0])
        bary = np.clip(bary, 0.0, None)
        s = bary.sum()
        bary = bary / s if s > 0 else np.array([1.0, 0.0, 0.0])
        return t, bary

    def locate_nearest_many(self, points) -> tuple[np.ndarray, np.ndarray]:
        """Batched :meth:`locate_nearest`: every row resolves to a triangle.

        Returns
        -------
        (triangle_indices, barycentric) : ((k,) int ndarray, (k, 3) ndarray)
            Row ``q`` matches ``locate_nearest(points[q])`` bitwise.
        """
        pts = as_points(points)
        tri_out, bary_out = self.locate_many(pts)
        miss = np.flatnonzero(tri_out < 0)
        if len(miss) == 0:
            return tri_out, bary_out

        mp = pts[miss]
        m = len(self._centroids)
        chunk = max(1, _NEAREST_CHUNK_ELEMENTS // m)
        nearest = np.empty(len(miss), dtype=np.int64)
        for s in range(0, len(miss), chunk):
            block = mp[s:s + chunk]
            d = np.hypot(
                self._centroids[None, :, 0] - block[:, 0, None],
                self._centroids[None, :, 1] - block[:, 1, None],
            )
            nearest[s:s + chunk] = np.argmin(d, axis=1)
        bary = barycentric_coords_paired(
            mp, self._ta[nearest], self._tb[nearest], self._tc[nearest]
        )
        nan_rows = np.any(np.isnan(bary), axis=1)
        bary[nan_rows] = (1.0, 0.0, 0.0)
        bary = np.clip(bary, 0.0, None)
        sums = bary.sum(axis=1)
        pos = sums > 0
        bary[pos] = bary[pos] / sums[pos, None]
        bary[~pos] = (1.0, 0.0, 0.0)
        tri_out[miss] = nearest
        bary_out[miss] = bary
        return tri_out, bary_out
