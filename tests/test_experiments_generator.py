"""Tests for the random scenario generator + fuzz runs of the planner."""

import numpy as np
import pytest

from repro.coverage import LloydConfig
from repro.experiments import random_foi, random_scenario
from repro.marching import MarchingConfig, MarchingPlanner
from repro.metrics import connectivity_report

FAST = MarchingConfig(
    foi_target_points=200, lloyd=LloydConfig(grid_target=700, max_iterations=20)
)


class TestRandomFoi:
    def test_area_respected(self, rng):
        foi = random_foi(rng, area=123_456.0)
        assert foi.area == pytest.approx(123_456.0)

    def test_deterministic_per_seed(self):
        a = random_foi(np.random.default_rng(5), area=100_000.0)
        b = random_foi(np.random.default_rng(5), area=100_000.0)
        assert np.array_equal(a.outer.vertices, b.outer.vertices)
        assert len(a.holes) == len(b.holes)

    def test_zero_holes_possible(self):
        foi = random_foi(np.random.default_rng(0), max_holes=0)
        assert not foi.has_holes

    def test_holes_inside(self, rng):
        for seed in range(5):
            foi = random_foi(np.random.default_rng(seed), max_holes=2)
            for hole in foi.holes:
                assert foi.outer.contains(hole.vertices).all()


class TestRandomScenario:
    def test_swarm_deployable_and_connected(self):
        sc = random_scenario(seed=1, robot_count=49)
        assert sc.swarm.size == 49
        assert sc.swarm.is_connected()
        assert sc.m1.contains(sc.swarm.positions).all()

    def test_separation_in_range(self):
        sc = random_scenario(seed=2, separation_range=(12.0, 14.0))
        gap = np.hypot(*(sc.m2.centroid - sc.m1.centroid))
        assert 12.0 * sc.comm_range <= gap <= 14.0 * sc.comm_range + 1e-6

    def test_deterministic(self):
        a = random_scenario(seed=7)
        b = random_scenario(seed=7)
        assert np.array_equal(a.swarm.positions, b.swarm.positions)
        assert np.allclose(a.m2.centroid, b.m2.centroid)


class TestFuzzPlanner:
    """The planner's guarantees must hold on arbitrary valid geometry,
    not just the paper's seven scenarios."""

    @pytest.mark.parametrize("seed", [11, 23, 37])
    def test_plan_on_random_scenarios(self, seed):
        sc = random_scenario(seed, robot_count=49, max_holes=1,
                             separation_range=(8.0, 20.0))
        result = MarchingPlanner(FAST).plan(sc.swarm, sc.m2)
        # Guarantee 1: global connectivity.
        rep = connectivity_report(
            result.trajectory, sc.comm_range, result.boundary_anchors
        )
        assert rep.connected, f"seed {seed} lost connectivity"
        # Guarantee 2: everyone ends inside the target free region.
        assert sc.m2.contains(result.final_positions).all()
        # Guarantee 3: distance sane (>= straight-line lower bound).
        d = result.total_distance
        lower = float(
            np.hypot(*(result.final_positions - sc.swarm.positions).T).sum()
        )
        assert d >= lower - 1e-6
        assert d < 5.0 * lower + 1e5
