"""Pipeline-level observability: stage spans, metrics and the CLI trace."""

import pytest

from repro.cli import main
from repro.coverage import LloydConfig
from repro.foi import FieldOfInterest, ellipse_polygon
from repro.marching import MarchingConfig, MarchingPlanner
from repro.obs import Metrics, Tracer, activate, activate_metrics, read_jsonl
from repro.robots import RadioSpec, Swarm

FAST = MarchingConfig(
    foi_target_points=180,
    lloyd=LloydConfig(grid_target=600, max_iterations=15),
)

# The planner's Fig. 2 stages, in execution order.
PLAN_STAGES = [
    "plan.extract_triangulation",
    "plan.disk_map_t",
    "plan.triangulate_foi",
    "plan.disk_map_m2",
    "plan.rotation_search",
    "plan.repair",
    "plan.adjust",
    "plan.march",
]


@pytest.fixture(scope="module")
def small_setup():
    radio = RadioSpec.from_comm_range(80.0)
    m1 = FieldOfInterest(
        ellipse_polygon(1.0, 1.0, samples=32).scaled_to_area(100_000.0),
        name="m1",
    )
    swarm = Swarm.deploy_lattice(m1, 36, radio)
    m2 = FieldOfInterest(
        ellipse_polygon(1.1, 0.9, samples=32).scaled_to_area(95_000.0),
        name="m2",
    ).translated((900.0, 100.0))
    return swarm, m2


class TestPlannerSpans:
    def test_stage_spans_in_order(self, small_setup):
        swarm, m2 = small_setup
        tracer = Tracer()
        with activate(tracer):
            MarchingPlanner(FAST).plan(swarm, m2)
        names = tracer.span_names()
        stage_names = [n for n in names if n.startswith("plan.")]
        assert stage_names == PLAN_STAGES
        # The nested layers are traced too: both disk maps run the
        # sparse solver, the extraction runs Delaunay.
        assert tracer.call_count("harmonic.disk_map") == 2
        assert tracer.call_count("harmonic.solve_linear") == 2
        assert tracer.call_count("mesh.delaunay") >= 1
        assert tracer.call_count("harmonic.rotation_search") == 1

    def test_stage_spans_nest_under_their_stage(self, small_setup):
        swarm, m2 = small_setup
        tracer = Tracer()
        with activate(tracer):
            MarchingPlanner(FAST).plan(swarm, m2)
        by_id = {r.span_id: r for r in tracer.get_trace()}
        search = next(
            r for r in tracer.get_trace() if r.name == "harmonic.rotation_search"
        )
        assert by_id[search.parent_id].name == "plan.rotation_search"
        assert search.attributes["evaluations"] == 4 + 2 * 4 + 1

    def test_rotation_attributes_and_metrics(self, small_setup):
        swarm, m2 = small_setup
        metrics = Metrics()
        with activate_metrics(metrics):
            result = MarchingPlanner(FAST).plan(swarm, m2)
        counted = metrics.counter("rotation.objective_evaluations").value
        assert counted == result.rotation_evaluations

    def test_planning_untraced_records_nothing(self, small_setup):
        swarm, m2 = small_setup
        tracer = Tracer()
        MarchingPlanner(FAST).plan(swarm, m2)  # tracer never activated
        assert tracer.get_trace() == []


class TestCliTrace:
    def test_plan_trace_covers_every_stage(self, tmp_path, capsys):
        out = tmp_path / "trace.jsonl"
        code = main(
            ["plan", "3", "--points", "240", "--trace", str(out)]
        )
        assert code == 0
        events = read_jsonl(out)
        spans = [e for e in events if e["type"] == "span"]
        names = {s["name"] for s in spans}
        for stage in PLAN_STAGES + ["pipeline.run"]:
            assert stage in names, f"missing span {stage}"
        for s in spans:
            assert s["duration_s"] is not None and s["duration_s"] >= 0.0
        assert any(e["type"] == "metric" for e in events)
        captured = capsys.readouterr()
        assert "phase timings" in captured.out

    def test_plan_without_trace_writes_nothing(self, tmp_path, capsys,
                                               monkeypatch):
        monkeypatch.chdir(tmp_path)
        code = main(["plan", "3", "--points", "240"])
        assert code == 0
        assert list(tmp_path.iterdir()) == []
        assert "phase timings" not in capsys.readouterr().out
