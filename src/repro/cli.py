"""Command-line interface: run scenarios, sweeps and figure generation.

Usage (after ``pip install -e .`` / ``python setup.py develop``)::

    python -m repro scenario 3 --separation 20
    python -m repro sweep 1 --separations 10 40 70 100 --figures out/
    python -m repro table1
    python -m repro lemmas
    python -m repro pipeline 3 --output out/fig2
    python -m repro plan 3 --trace out.jsonl
    python -m repro chaos --seeds 0 1 --output chaos.json
    python -m repro mission --families corridor --epochs 3
    python -m repro serve --port 8642 --workers 2 --service-workers 2
    python -m repro submit 1 --separation 12 --output plan.json
    python -m repro loadgen --clients 200 --seed 0

Every command prints the same rows the paper reports and exits non-zero
on failure, so the CLI doubles as a smoke test in CI.

Every subcommand accepts ``--trace FILE``: it activates the tracer in
:mod:`repro.obs` for the run and streams every closed span (plus a
final metrics snapshot) to ``FILE`` as JSON lines.

The experiment-scale subcommands (``sweep``, ``table1``, ``report``)
additionally accept ``--workers N`` (fan the independent runs out over
worker processes; results are byte-identical to ``--workers 1``) and
``--cache-dir DIR`` (persist the content-addressed disk-map cache
across invocations).
"""

from __future__ import annotations

import argparse
import signal
import sys
from typing import Sequence

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Optimal Marching of Autonomous "
        "Networked Robots' (ICDCS 2016)",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--trace", metavar="FILE", default=None,
        help="write a JSONL span trace (plus metrics) of the run to FILE",
    )

    # Experiment-scale commands also get the parallel/caching knobs.
    parallel = argparse.ArgumentParser(add_help=False)
    parallel.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker processes for independent runs (default: "
        "$REPRO_WORKERS or 1); output is identical for any N",
    )
    parallel.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="persist the disk-map cache here, reused across invocations",
    )

    p_scenario = sub.add_parser(
        "scenario", help="run all four methods on one scenario instance",
        parents=[common],
    )
    p_scenario.add_argument("scenario_id", type=int, choices=range(1, 8))
    p_scenario.add_argument("--separation", type=float, default=20.0,
                            help="M1-M2 distance in communication ranges")
    p_scenario.add_argument("--points", type=int, default=400,
                            help="target FoI grid resolution")

    p_sweep = sub.add_parser(
        "sweep", help="Fig. 3-style separation sweep for one scenario",
        parents=[common, parallel],
    )
    p_sweep.add_argument("scenario_id", type=int, choices=range(1, 8))
    p_sweep.add_argument("--separations", type=float, nargs="+",
                         default=[10.0, 40.0, 70.0, 100.0])
    p_sweep.add_argument("--figures", metavar="DIR", default=None,
                         help="also write the two SVG figure panels here")

    sub.add_parser(
        "table1", help="Table I: global connectivity per scenario",
        parents=[common, parallel],
    )
    sub.add_parser(
        "lemmas", help="the Fig. 1 / Lemma 1-2 constructions",
        parents=[common],
    )

    p_report = sub.add_parser(
        "report", help="run all scenarios and write a markdown report",
        parents=[common, parallel],
    )
    p_report.add_argument("--output", default="reproduction_report.md")
    p_report.add_argument("--separation", type=float, default=20.0)
    p_report.add_argument("--scenarios", type=int, nargs="+", default=None,
                          help="subset of scenario ids (default: all)")
    p_report.add_argument("--chaos", action="store_true",
                          help="append a seeded fault-injection sweep and "
                               "its recovery metrics to the report")
    p_report.add_argument("--chaos-seeds", type=int, nargs="+", default=[0],
                          help="seeds for the --chaos sweep (default: 0)")
    p_report.add_argument("--zoo", action="store_true",
                          help="append a procedural scenario-zoo invariant "
                               "campaign (per-family pass/fail table)")
    p_report.add_argument("--zoo-seeds", type=int, default=2, metavar="N",
                          help="seeds per family for the --zoo campaign "
                               "(default: 2)")
    p_report.add_argument("--missions", action="store_true",
                          help="append a streaming-replanning mission "
                               "campaign (per-motion cache and C=1 table)")
    p_report.add_argument("--mission-seeds", type=int, default=1, metavar="N",
                          help="seeds per mission cell for --missions "
                               "(default: 1)")
    p_report.add_argument("--mission-epochs", type=int, default=3, metavar="N",
                          help="target updates per mission for --missions "
                               "(default: 3)")
    p_report.add_argument("--scaling", action="store_true",
                          help="append per-stage swarm-size scaling curves "
                               "(wall-clock and peak allocation)")
    p_report.add_argument("--scaling-sizes", type=int, nargs="+", default=None,
                          help="swarm sizes for --scaling "
                               "(default: 100 1000 10000)")
    p_report.add_argument("--load", action="store_true",
                          help="append a seeded service load-test section "
                               "(latency percentiles + correctness checks)")
    p_report.add_argument("--load-clients", type=int, default=200,
                          help="clients for the --load burst (default: 200)")
    p_report.add_argument("--load-seed", type=int, default=0,
                          help="schedule seed for --load (default: 0)")
    p_report.add_argument("--load-service-workers", type=int, default=2,
                          metavar="N",
                          help="fleet shards for --load (default: 2)")

    p_pipe = sub.add_parser(
        "pipeline", help="run the Fig. 2 pipeline and write its six panels",
        parents=[common],
    )
    p_pipe.add_argument("scenario_id", type=int, choices=range(1, 8))
    p_pipe.add_argument("--output", default="output/fig2")
    p_pipe.add_argument("--separation", type=float, default=15.0)

    p_plan = sub.add_parser(
        "plan",
        help="plan one scenario transition and report per-stage timings",
        parents=[common],
    )
    p_plan.add_argument("scenario_id", type=int, choices=range(1, 8))
    p_plan.add_argument("--separation", type=float, default=15.0,
                        help="M1-M2 distance in communication ranges")
    p_plan.add_argument("--points", type=int, default=400,
                        help="target FoI grid resolution")
    p_plan.add_argument("--method", choices=("a", "b"), default="a")

    p_chaos = sub.add_parser(
        "chaos",
        help="seeded fault-injection sweep with recovery metrics",
        parents=[common, parallel],
    )
    p_chaos.add_argument("--scenarios", type=int, nargs="+",
                         default=None, metavar="ID",
                         help="scenario ids (default: 1 2 4)")
    p_chaos.add_argument("--archetypes", nargs="+", default=None,
                         metavar="NAME",
                         help="fault archetypes (default: single cluster "
                         "cascade; also: stuck, storm)")
    p_chaos.add_argument("--seeds", type=int, nargs="+", default=[0],
                         help="schedule seeds; same seeds, same summary")
    p_chaos.add_argument("--robots", type=int, default=81,
                         help="robots per case")
    p_chaos.add_argument("--separation", type=float, default=6.0,
                         help="M1-M2 distance in communication ranges")
    p_chaos.add_argument("--output", metavar="FILE", default=None,
                         help="write the canonical JSON summary to FILE")

    p_zoo = sub.add_parser(
        "zoo",
        help="procedural scenario-zoo invariant campaign",
        parents=[common, parallel],
    )
    p_zoo.add_argument("--families", nargs="+", default=["all"],
                       metavar="NAME",
                       help="zoo families (default: all; see repro."
                       "experiments.zoo.FAMILIES)")
    p_zoo.add_argument("--seeds", type=int, default=3, metavar="N",
                       help="seeds per family, 0..N-1 (default: 3)")
    p_zoo.add_argument("--seed-list", type=int, nargs="+", default=None,
                       metavar="SEED",
                       help="explicit seeds (overrides --seeds)")
    p_zoo.add_argument("--robots", type=int, default=36,
                       help="robots per case")
    p_zoo.add_argument("--separation", type=float, default=5.0,
                       help="M1-M2 distance in communication ranges")
    p_zoo.add_argument("--methods", nargs="+", default=None,
                       metavar="METHOD",
                       help="planner methods (default: 'ours (a)' "
                       "'ours (b)')")
    p_zoo.add_argument("--no-shrink", action="store_true",
                       help="keep failing cases at their drawn params "
                       "instead of shrinking them")
    p_zoo.add_argument("--output", metavar="FILE", default=None,
                       help="write the canonical JSON summary to FILE")
    p_zoo.add_argument("--counterexamples", metavar="FILE",
                       default="zoo_counterexamples.json",
                       help="persist replayable failure triples here "
                       "(default: zoo_counterexamples.json; only "
                       "written when there are failures)")
    p_zoo.add_argument("--replay", metavar="JSON_OR_FILE", default=None,
                       help="replay one counterexample triple (inline "
                       "JSON) or every entry of a persisted file, and "
                       "verify byte-identical reproduction")

    p_mission = sub.add_parser(
        "mission",
        help="streaming replanning campaign against moving targets",
        parents=[common, parallel],
    )
    p_mission.add_argument("--families", nargs="+", default=None,
                           metavar="NAME",
                           help="zoo families the targets are drawn from "
                           "(default: corridor annulus; 'all' for every "
                           "family)")
    p_mission.add_argument("--motions", nargs="+", default=None,
                           metavar="MOTION",
                           help="target motions (default: drift deform "
                           "drift+deform)")
    p_mission.add_argument("--seeds", type=int, default=1, metavar="N",
                           help="seeds per cell, 0..N-1 (default: 1)")
    p_mission.add_argument("--seed-list", type=int, nargs="+", default=None,
                           metavar="SEED",
                           help="explicit seeds (overrides --seeds)")
    p_mission.add_argument("--epochs", type=int, default=3,
                           help="target updates per mission (default: 3)")
    p_mission.add_argument("--robots", type=int, default=25,
                           help="robots per mission")
    p_mission.add_argument("--method", choices=("a", "b"), default="a",
                           help="planner method (default: a)")
    p_mission.add_argument("--advance-fraction", type=float, default=0.5,
                           help="fraction of each plan executed before the "
                           "next target lands (default: 0.5)")
    p_mission.add_argument("--output", metavar="FILE", default=None,
                           help="write the canonical JSON summary to FILE")

    p_serve = sub.add_parser(
        "serve",
        help="run the planning service (HTTP, see repro.service)",
        parents=[common, parallel],
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8642,
                         help="bind port (0 picks an ephemeral port)")
    p_serve.add_argument("--capacity", type=int, default=64,
                         help="maximum queued jobs before 429 backpressure "
                              "(split evenly across --service-workers)")
    p_serve.add_argument("--service-workers", type=int, default=1,
                         metavar="N",
                         help="shard workers: the job queue is sharded by "
                              "consistent hash of the content address, each "
                              "shard with its own dispatcher pool (default: 1)")
    p_serve.add_argument("--job-timeout", type=float, default=None,
                         metavar="SECONDS",
                         help="per-job wall-clock budget (default: none)")
    p_serve.add_argument("--retries", type=int, default=1,
                         help="extra attempts for a failed/timed-out job")
    p_serve.add_argument("--ttl", type=float, default=3600.0,
                         metavar="SECONDS",
                         help="retention of finished jobs and results")
    p_serve.add_argument("--journal-dir", metavar="DIR", default=None,
                         help="write-ahead job journal directory: every job "
                              "transition is fsynced there before it is "
                              "acknowledged, missions checkpoint per epoch, "
                              "and a restart with the same DIR replays the "
                              "journal and resumes (default: no journal)")
    p_serve.add_argument("--no-journal-fsync", action="store_true",
                         help="skip the per-append fsync (tests only; "
                              "forfeits the kill -9 durability claim)")

    p_loadgen = sub.add_parser(
        "loadgen",
        help="seeded open-loop load test of the planning service",
        parents=[common],
    )
    p_loadgen.add_argument("--clients", type=int, default=200,
                           help="concurrent clients to replay (default: 200)")
    p_loadgen.add_argument("--duplicate-fraction", type=float, default=0.5,
                           help="fraction of clients that resubmit an "
                                "already-scheduled request (default: 0.5)")
    p_loadgen.add_argument("--arrival-rate", type=float, default=200.0,
                           metavar="HZ",
                           help="open-loop arrival rate (default: 200/s)")
    p_loadgen.add_argument("--seed", type=int, default=0,
                           help="schedule seed; same seed, same traffic")
    p_loadgen.add_argument("--stream-every", type=int, default=0, metavar="K",
                           help="every Kth client follows its job over the "
                                "SSE events endpoint (default: 0 = off)")
    p_loadgen.add_argument("--points", type=int, default=200,
                           help="foi_target_points per request (default: 200)")
    p_loadgen.add_argument("--grid-target", type=int, default=600,
                           help="lloyd_grid_target per request (default: 600)")
    p_loadgen.add_argument("--resolution", type=int, default=12,
                           help="metric resolution per request (default: 12)")
    p_loadgen.add_argument("--timeout", type=float, default=300.0,
                           help="per-client deadline in seconds")
    p_loadgen.add_argument("--max-inflight", type=int, default=256,
                           help="socket concurrency bound (default: 256)")
    p_loadgen.add_argument("--host", default="127.0.0.1")
    p_loadgen.add_argument("--port", type=int, default=None,
                           help="attach to a running service; omit to boot "
                                "a fresh in-process fleet instead")
    p_loadgen.add_argument("--service-workers", type=int, default=2,
                           metavar="N",
                           help="fleet shards for the self-contained mode "
                                "(ignored with --port; default: 2)")
    p_loadgen.add_argument("--no-journal", action="store_true",
                           help="skip the journal + restart-recovery probe "
                                "in the self-contained mode (ignored with "
                                "--port)")
    p_loadgen.add_argument("--output", metavar="FILE", default=None,
                           help="write the canonical summary bytes to FILE")

    p_submit = sub.add_parser(
        "submit",
        help="submit a plan request to a running service and fetch it",
    )
    p_submit.add_argument("scenario_ids", type=int, nargs="+",
                          choices=range(1, 8))
    p_submit.add_argument("--host", default="127.0.0.1")
    p_submit.add_argument("--port", type=int, default=8642)
    p_submit.add_argument("--separation", type=float, default=20.0)
    p_submit.add_argument("--methods", nargs="+", default=None,
                          metavar="METHOD",
                          help="subset of the harness methods (default: all)")
    p_submit.add_argument("--points", type=int, default=500,
                          help="target FoI grid resolution")
    p_submit.add_argument("--grid-target", type=int, default=2000,
                          help="Lloyd coverage grid resolution")
    p_submit.add_argument("--resolution", type=int, default=32,
                          help="metric sampling resolution")
    p_submit.add_argument("--priority", type=int, default=0)
    p_submit.add_argument("--timeout", type=float, default=600.0,
                          help="seconds to wait for the job to finish")
    p_submit.add_argument("--no-wait", action="store_true",
                          help="submit and print the job id without polling")
    p_submit.add_argument("--retries", type=int, default=0,
                          help="client retry budget for transient failures "
                          "(connection refused, 429 backpressure, 503 drain)")
    p_submit.add_argument("--output", metavar="FILE", default=None,
                          help="also write the plan document (JSON) to FILE")
    return parser


def _cmd_scenario(args) -> int:
    from repro.experiments import (
        DEFAULT_METHODS,
        format_table,
        get_scenario,
        run_scenario,
    )

    run = run_scenario(
        get_scenario(args.scenario_id),
        separation_factor=args.separation,
        foi_target_points=args.points,
    )
    rows = []
    for method in DEFAULT_METHODS:
        e = run.evaluations[method]
        rows.append([
            method,
            f"{e.total_distance / 1000:.1f} km",
            f"{e.stable_link_ratio:.3f}",
            e.connectivity_flag,
        ])
    print(f"Scenario {args.scenario_id} at {args.separation:g}x r_c:")
    print(format_table(["method", "D", "L", "C"], rows))
    return 0


def _cmd_sweep(args) -> int:
    from repro.experiments import (
        DEFAULT_METHODS,
        get_scenario,
        render_sweep,
        sweep_separations,
        write_sweep_figures,
    )

    sweep = sweep_separations(
        get_scenario(args.scenario_id),
        separation_factors=tuple(args.separations),
        workers=args.workers,
    )
    print(render_sweep(sweep, list(DEFAULT_METHODS)))
    if args.figures:
        for path in write_sweep_figures(sweep, args.figures):
            print(f"wrote {path}")
    return 0


def _cmd_table1(args) -> int:
    from repro.experiments import (
        DEFAULT_METHODS,
        get_scenario,
        render_table1,
        run_scenarios,
    )

    runs = run_scenarios(
        [get_scenario(sid) for sid in range(1, 8)],
        separation_factor=20.0,
        workers=args.workers,
    )
    print(render_table1(runs, list(DEFAULT_METHODS)))
    ours_ok = all(
        runs[sid].evaluations[m].globally_connected
        for sid in runs
        for m in ("ours (a)", "ours (b)")
    )
    return 0 if ours_ok else 1


def _cmd_lemmas(args) -> int:
    from repro.experiments import format_table, lemma1_example, lemma2_example

    l1 = lemma1_example()
    print("Lemma 1 (Fig. 1a):")
    print(format_table(
        ["assignment", "D", "links kept"],
        [
            ["link-preserving", f"{l1.preserving_distance:.3f}", l1.preserving_links],
            ["minimum-distance", f"{l1.min_distance:.3f}", l1.min_distance_links],
        ],
    ))
    l2 = lemma2_example()
    print(f"\nLemma 2 (Fig. 1b): best of 5040 assignments keeps "
          f"{l2.best_preserved}/{l2.total_links} links")
    ok = l1.tradeoff_holds and l2.full_preservation_impossible
    return 0 if ok else 1


def _cmd_report(args) -> int:
    from repro.experiments.report import write_report

    path = write_report(
        args.output,
        separation_factor=args.separation,
        scenario_ids=args.scenarios,
        workers=args.workers,
        chaos=args.chaos,
        chaos_seeds=args.chaos_seeds,
        zoo=args.zoo,
        zoo_seeds=args.zoo_seeds,
        missions=args.missions,
        mission_seeds=args.mission_seeds,
        mission_epochs=args.mission_epochs,
        scaling=args.scaling,
        scaling_sizes=args.scaling_sizes,
        load=args.load,
        load_clients=args.load_clients,
        load_seed=args.load_seed,
        load_service_workers=args.load_service_workers,
    )
    print(f"wrote {path}")
    return 0


def _cmd_pipeline(args) -> int:
    from repro.experiments import get_scenario
    from repro.marching import run_pipeline
    from repro.robots import RadioSpec, Swarm
    from repro.viz import render_pipeline_figure

    spec = get_scenario(args.scenario_id)
    radio = RadioSpec.from_comm_range(spec.comm_range)
    m1, m2 = spec.build(separation_factor=args.separation)
    swarm = Swarm.deploy_lattice(m1, spec.robot_count, radio)
    stages = run_pipeline(swarm, m2)
    for path in render_pipeline_figure(stages, args.output, spec.comm_range):
        print(f"wrote {path}")
    return 0


def _cmd_plan(args) -> int:
    from repro.experiments import get_scenario
    from repro.marching import MarchingConfig, run_pipeline
    from repro.obs import get_tracer
    from repro.robots import RadioSpec, Swarm

    spec = get_scenario(args.scenario_id)
    radio = RadioSpec.from_comm_range(spec.comm_range)
    m1, m2 = spec.build(separation_factor=args.separation)
    swarm = Swarm.deploy_lattice(m1, spec.robot_count, radio)
    cfg = MarchingConfig(method=args.method, foi_target_points=args.points)
    stages = run_pipeline(swarm, m2, config=cfg)
    result = stages.result
    print(
        f"Scenario {args.scenario_id}: planned {swarm.size} robots "
        f"(method {args.method})"
    )
    print(
        f"  rotation angle : {result.rotation_angle:.4f} rad "
        f"({result.rotation_evaluations} objective evaluations)"
    )
    print(f"  total distance : {result.total_distance / 1000:.2f} km")
    tracer = get_tracer()
    if tracer.enabled:
        print("  phase timings:")
        for name, row in tracer.phase_timings().items():
            print(
                f"    {name:34s} {row['calls']:5d} calls "
                f"{row['total_s'] * 1000:10.2f} ms"
            )
    return 0


def _cmd_chaos(args) -> int:
    from repro.experiments.chaos import (
        DEFAULT_ARCHETYPES,
        DEFAULT_SCENARIOS,
        ChaosConfig,
        chaos_sweep,
        render_chaos,
        summary_bytes,
    )
    from repro.faults import ARCHETYPES

    archetypes = tuple(args.archetypes or DEFAULT_ARCHETYPES)
    unknown = [a for a in archetypes if a not in ARCHETYPES]
    if unknown:
        print(f"error: unknown archetypes {unknown}; valid: "
              f"{list(ARCHETYPES)}", file=sys.stderr)
        return 2
    config = ChaosConfig(
        robot_count=args.robots, separation_factor=args.separation
    )
    summary = chaos_sweep(
        scenario_ids=tuple(args.scenarios or DEFAULT_SCENARIOS),
        archetypes=archetypes,
        seeds=tuple(args.seeds),
        config=config,
        workers=args.workers,
    )
    print(render_chaos(summary))
    if args.output:
        from pathlib import Path

        out = Path(args.output)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_bytes(summary_bytes(summary))
        print(f"wrote {out}")
    # Binary-outcome guarantee: a case that is neither recovered nor a
    # typed unrecoverable never reaches this point (it would have
    # raised); exit non-zero only if a recovered case broke C=1.
    return 0 if summary["summary"]["connected_all"] else 1


def _cmd_zoo(args) -> int:
    import json as json_module
    from pathlib import Path

    from repro.experiments.zoo import (
        FAMILIES,
        ZooConfig,
        render_zoo,
        replay_counterexample,
        summary_bytes,
        zoo_campaign,
    )

    config = ZooConfig(
        robot_count=args.robots,
        separation_factor=args.separation,
        methods=tuple(args.methods) if args.methods else ("ours (a)", "ours (b)"),
        shrink=not args.no_shrink,
    )

    if args.replay:
        source = Path(args.replay)
        try:
            text = source.read_text() if source.exists() else args.replay
            parsed = json_module.loads(text)
        except (OSError, json_module.JSONDecodeError) as exc:
            print(f"error: cannot parse --replay argument: {exc}",
                  file=sys.stderr)
            return 2
        entries = parsed if isinstance(parsed, list) else [parsed]
        all_reproduced = True
        for entry in entries:
            doc, matches = replay_counterexample(entry, config)
            verdict = "byte-identical" if matches else "DIVERGED"
            print(
                f"replay {doc['family']} seed {doc['seed']}: "
                f"outcome={doc['outcome']} reproduction={verdict}"
            )
            all_reproduced = all_reproduced and matches
        return 0 if all_reproduced else 1

    families = tuple(FAMILIES) if "all" in args.families else tuple(args.families)
    unknown = [f for f in families if f not in FAMILIES]
    if unknown:
        print(f"error: unknown families {unknown}; valid: {list(FAMILIES)}",
              file=sys.stderr)
        return 2
    seeds = tuple(args.seed_list) if args.seed_list else tuple(range(args.seeds))
    summary = zoo_campaign(
        families=families,
        seeds=seeds,
        config=config,
        workers=args.workers,
    )
    print(render_zoo(summary))
    if args.output:
        out = Path(args.output)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_bytes(summary_bytes(summary))
        print(f"wrote {out}")
    if summary["counterexamples"] and args.counterexamples:
        ce = Path(args.counterexamples)
        ce.parent.mkdir(parents=True, exist_ok=True)
        ce.write_text(
            json_module.dumps(summary["counterexamples"], indent=2,
                              sort_keys=True)
        )
        print(f"wrote {len(summary['counterexamples'])} counterexample(s) "
              f"to {ce}")
    return 0 if summary["summary"]["all_pass"] else 1


def _cmd_mission(args) -> int:
    from repro.errors import MissionError
    from repro.experiments.missions import (
        DEFAULT_FAMILIES,
        mission_campaign,
        missions_passed,
        render_missions,
        summary_bytes,
    )
    from repro.experiments.zoo import FAMILIES
    from repro.missions import MOTIONS, MissionConfig

    if args.families and "all" in args.families:
        families = tuple(FAMILIES)
    else:
        families = tuple(args.families) if args.families else DEFAULT_FAMILIES
    motions = tuple(args.motions) if args.motions else tuple(MOTIONS)
    seeds = (
        tuple(args.seed_list) if args.seed_list else tuple(range(args.seeds))
    )
    try:
        config = MissionConfig(
            robot_count=args.robots,
            method=args.method,
            advance_fraction=args.advance_fraction,
        )
        summary = mission_campaign(
            families=families,
            motions=motions,
            seeds=seeds,
            epochs=args.epochs,
            config=config,
            workers=args.workers,
        )
    except MissionError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(render_missions(summary))
    if args.output:
        from pathlib import Path

        out = Path(args.output)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_bytes(summary_bytes(summary))
        print(f"wrote {out}")
    return 0 if missions_passed(summary) else 1


def _cmd_serve(args) -> int:
    from repro import service as service_module
    from repro.exec import get_cache, resolve_workers
    from repro.obs import get_metrics, get_tracer

    # Under --trace the ambient tracer/metrics pair is the traced one
    # main() installed; hand it to the service so every server span
    # (admission, queue wait, solve, serialize) streams to the sink
    # exactly like any other subcommand's spans.  --cache-dir likewise
    # arrives as the ambient cache activated by _dispatch.
    tracer = get_tracer()
    service = service_module.PlanningService(
        host=args.host,
        port=args.port,
        capacity=args.capacity,
        dispatchers=max(1, resolve_workers(args.workers)),
        service_workers=max(1, args.service_workers),
        job_timeout_s=args.job_timeout,
        retries=args.retries,
        ttl_s=args.ttl,
        journal_dir=args.journal_dir,
        journal_fsync=not args.no_journal_fsync,
        tracer=tracer if tracer.enabled else None,
        metrics=get_metrics(),
        cache=get_cache(),
    )
    service.start()
    # getattr: CLI tests stub PlanningService with a minimal fake.
    if getattr(service, "journal", None) is not None:
        recovered = service.recovery.get("jobs_restored", 0)
        print(
            f"journal at {service.journal.directory}: "
            f"{service.recovery.get('journal_records', 0)} records replayed, "
            f"{recovered} jobs restored "
            f"({service.recovery.get('jobs_requeued', 0)} requeued, "
            f"{service.recovery.get('jobs_retried', 0)} retried) in "
            f"{service.recovery.get('replay_s', 0.0):.3f}s",
            flush=True,
        )
    print(
        f"repro service listening on http://{service.host}:{service.port}",
        flush=True,
    )

    # SIGTERM gets the same graceful path as Ctrl-C: drain (missions
    # checkpoint-and-release at their epoch boundary), then exit 0.
    def _on_sigterm(signum, frame):
        raise KeyboardInterrupt

    previous = signal.signal(signal.SIGTERM, _on_sigterm)
    try:
        service.wait()
    except KeyboardInterrupt:
        print("interrupt: draining jobs and shutting down", flush=True)
    finally:
        signal.signal(signal.SIGTERM, previous)
        service.stop()
    return 0


def _cmd_loadgen(args) -> int:
    from repro.experiments.loadgen import (
        LoadgenConfig,
        loadgen_passed,
        render_loadgen,
        run_loadgen,
        run_loadgen_fleet,
        summary_bytes,
    )

    config = LoadgenConfig(
        clients=args.clients,
        duplicate_fraction=args.duplicate_fraction,
        arrival_rate_hz=args.arrival_rate,
        seed=args.seed,
        stream_every=args.stream_every,
        foi_target_points=args.points,
        lloyd_grid_target=args.grid_target,
        resolution=args.resolution,
        timeout_s=args.timeout,
        max_inflight=args.max_inflight,
    )
    if args.port is not None:
        summary = run_loadgen(config, port=args.port, host=args.host)
    else:
        summary = run_loadgen_fleet(
            config,
            service_workers=max(1, args.service_workers),
            journal=not args.no_journal,
        )
    print(render_loadgen(summary))
    if args.output:
        from pathlib import Path

        out = Path(args.output)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_bytes(summary_bytes(summary))
        print(f"wrote {out}")
    return 0 if loadgen_passed(summary) else 1


def _cmd_submit(args) -> int:
    import json

    from repro.experiments import format_table
    from repro.service import ServiceClient

    client = ServiceClient(args.host, args.port, retries=args.retries)
    submitted = client.submit(
        args.scenario_ids,
        separation_factor=args.separation,
        methods=args.methods,
        priority=args.priority,
        foi_target_points=args.points,
        lloyd_grid_target=args.grid_target,
        resolution=args.resolution,
    )
    job_id = submitted["job_id"]
    dedup = " (deduplicated)" if submitted.get("deduplicated") else ""
    print(f"job {job_id}: {submitted['state']}{dedup}")
    if args.no_wait:
        return 0
    status = client.wait(job_id, timeout=args.timeout)
    if status["state"] != "done":
        print(f"job {job_id} {status['state']}: {status.get('error')}",
              file=sys.stderr)
        return 1
    payload = client.result_bytes(job_id)
    if args.output:
        from pathlib import Path

        out = Path(args.output)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_bytes(payload)
        print(f"wrote {out}")
    document = json.loads(payload)
    runs = document.get("runs")
    if not isinstance(runs, dict):
        print(json.dumps(document, indent=2, sort_keys=True))
        return 0
    for sid in sorted(runs, key=int):
        run = runs[sid]
        rows = [
            [
                method,
                f"{e['total_distance'] / 1000:.1f} km",
                f"{e['stable_link_ratio']:.3f}",
                "Y" if e["globally_connected"] else "N",
            ]
            for method, e in sorted(run["evaluations"].items())
        ]
        print(f"Scenario {sid} at {run['separation_factor']:g}x r_c:")
        print(format_table(["method", "D", "L", "C"], rows))
    return 0


_COMMANDS = {
    "scenario": _cmd_scenario,
    "sweep": _cmd_sweep,
    "table1": _cmd_table1,
    "lemmas": _cmd_lemmas,
    "report": _cmd_report,
    "chaos": _cmd_chaos,
    "zoo": _cmd_zoo,
    "mission": _cmd_mission,
    "pipeline": _cmd_pipeline,
    "plan": _cmd_plan,
    "serve": _cmd_serve,
    "loadgen": _cmd_loadgen,
    "submit": _cmd_submit,
}


def _dispatch(args) -> int:
    """Run the selected command, under a disk-backed cache if requested."""
    if getattr(args, "cache_dir", None):
        from repro.exec import activate_cache, disk_backed_cache

        with activate_cache(disk_backed_cache(args.cache_dir)):
            return _COMMANDS[args.command](args)
    return _COMMANDS[args.command](args)


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if getattr(args, "trace", None):
        from repro.obs import (
            JsonlSink,
            Metrics,
            Tracer,
            activate,
            activate_metrics,
        )

        try:
            sink_cm = JsonlSink(args.trace)
        except OSError as exc:
            print(f"error: cannot open trace file: {exc}", file=sys.stderr)
            return 2
        with sink_cm as sink:
            tracer = Tracer(sink=sink)
            metrics = Metrics()
            with activate(tracer), activate_metrics(metrics):
                code = _dispatch(args)
            sink.emit_metrics(metrics)
        return code
    return _dispatch(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
