"""Total stable link ratio ``L`` (paper Definition 1).

A link counts as *stable* when the two robots remain within
communication range at every instant of the transition.  For
synchronous piecewise-linear motion the inter-robot distance is convex
on every common linear sub-interval, so evaluating at the trajectory's
critical times (all waypoint times) plus a safety grid is exact up to
the resolution of asynchronous waypoints.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.network.links import LinkTable
from repro.robots.motion import SwarmTrajectory

__all__ = ["StableLinkReport", "stable_link_ratio", "stable_link_report"]


@dataclass(frozen=True)
class StableLinkReport:
    """Stable-link accounting for one transition.

    Attributes
    ----------
    initial_links : int
        ``sum_i m_i / 2`` - number of undirected M1 links.
    stable_links : int
        Links alive at every evaluated instant.
    ratio : float
        ``L`` per Definition 1.
    broken_mask : (m,) bool ndarray
        True where the corresponding initial link broke.
    """

    initial_links: int
    stable_links: int
    ratio: float
    broken_mask: np.ndarray


def stable_link_ratio(
    links: LinkTable, trajectory: SwarmTrajectory, resolution: int = 32
) -> float:
    """Definition 1's ``L`` over a trajectory."""
    return stable_link_report(links, trajectory, resolution).ratio


def stable_link_report(
    links: LinkTable, trajectory: SwarmTrajectory, resolution: int = 32
) -> StableLinkReport:
    """Detailed stable-link accounting over a trajectory."""
    stable = links.stable_mask_over(trajectory.snapshots(resolution))
    m = links.link_count
    s = int(stable.sum())
    return StableLinkReport(
        initial_links=m,
        stable_links=s,
        ratio=1.0 if m == 0 else s / m,
        broken_mask=~stable,
    )
