"""Whole-pipeline invariant campaigns over the scenario zoo.

``python -m repro zoo`` runs the full plan->execute pipeline over a
``(family, seed) x method`` matrix of procedurally generated scenarios
and asserts the paper's claims on every cell:

* **connectivity** - ``C = 1`` at every sampled instant of the
  trajectory *including* the left-sided limits at jump discontinuities
  (Definition 2);
* **lemma1** - ``L`` is a valid ratio in [0, 1] and ``D`` respects the
  Lemma-1 tradeoff's hard floor: no plan can move less than the
  minimum-cost matching between its own start and final positions;
* **definition2** - the serialized plan document round-trips and the
  re-verified trajectory still satisfies Definition 2 with the same
  metrics (what a service client would recompute from the wire bytes);
* **document** - the canonical plan-document bytes are stable under a
  JSON round-trip, and their digest is recorded so summaries compared
  across worker counts also compare every plan document byte for byte.

Every case is a pure function of ``(family, seed, params)``; failures
are shrunk toward milder parameters and persisted as replayable
triples, turning each counterexample into a pinned regression case.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro.baselines.hungarian import matching_cost, min_cost_matching
from repro.coverage import LloydConfig
from repro.errors import ReproError, ScenarioError
from repro.exec import ParallelMap, resolve_workers
from repro.experiments.tables import format_table
from repro.experiments.zoo.families import (
    FAMILIES,
    ZooParams,
    build_foi,
    family_rng,
    mild_params,
)
from repro.foi.region import FieldOfInterest
from repro.foi.shapes import radial_blob
from repro.io import check_format_version, dumps_canonical, result_to_dict, trajectory_from_dict
from repro.marching import MarchingConfig, MarchingPlanner
from repro.metrics import connectivity_report, stable_link_ratio
from repro.network.links import LinkTable
from repro.network.udg import UnitDiskGraph
from repro.obs import span
from repro.robots import RadioSpec, Swarm

__all__ = [
    "INVARIANTS",
    "ZooCase",
    "ZooConfig",
    "ZooScenario",
    "build_zoo_scenario",
    "replay_counterexample",
    "render_zoo",
    "run_zoo_case",
    "shrink_case",
    "summary_bytes",
    "zoo_campaign",
]

#: Invariant names, in report order.
INVARIANTS = ("connectivity", "lemma1", "definition2", "document")

_DISTANCE_TOL = 1e-6


@dataclass(frozen=True)
class ZooConfig:
    """Size/resolution knobs of a zoo campaign (CI-sized defaults).

    Attributes
    ----------
    robot_count : int
        Robots per case; 36 keeps a 5-family x 5-seed x 2-method
        matrix well under a minute while still exercising repair and
        Lloyd adjustment.
    separation_factor : float
        M1-M2 centroid distance in communication ranges.
    comm_range : float
    foi_target_points, grid_target, lloyd_max_iterations : int
        Planner resolution knobs.
    resolution : int
        Metric sampling resolution (connectivity, ``L``).
    methods : tuple of str
        Planner methods to run per scenario ("ours (a)", "ours (b)").
    shrink : bool
        Attempt parameter shrinking on failing cases.
    shrink_budget : int
        Maximum extra case runs spent shrinking one counterexample.
    """

    robot_count: int = 36
    separation_factor: float = 5.0
    comm_range: float = 80.0
    foi_target_points: int = 150
    grid_target: int = 500
    lloyd_max_iterations: int = 20
    resolution: int = 8
    methods: tuple[str, ...] = ("ours (a)", "ours (b)")
    shrink: bool = True
    shrink_budget: int = 4

    def marching_config(self, method: str) -> MarchingConfig:
        if method not in ("ours (a)", "ours (b)"):
            raise ScenarioError(f"unknown zoo method {method!r}")
        return MarchingConfig(
            method="a" if method.endswith("(a)") else "b",
            foi_target_points=self.foi_target_points,
            lloyd=LloydConfig(
                grid_target=self.grid_target,
                max_iterations=self.lloyd_max_iterations,
            ),
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "robot_count": self.robot_count,
            "separation_factor": self.separation_factor,
            "comm_range": self.comm_range,
            "foi_target_points": self.foi_target_points,
            "grid_target": self.grid_target,
            "lloyd_max_iterations": self.lloyd_max_iterations,
            "resolution": self.resolution,
            "methods": list(self.methods),
        }


@dataclass(frozen=True)
class ZooCase:
    """One (family, seed) cell; ``params`` overrides the seed's draw
    (that is how a shrunk counterexample replays)."""

    family: str
    seed: int
    params: ZooParams | None = None


@dataclass(frozen=True)
class ZooScenario:
    """A fully built zoo marching problem."""

    family: str
    seed: int
    params: ZooParams
    m1: FieldOfInterest
    m2: FieldOfInterest
    swarm: Swarm

    @property
    def comm_range(self) -> float:
        return self.swarm.radio.comm_range


def build_zoo_scenario(
    family: str,
    seed: int,
    config: ZooConfig | None = None,
    params: ZooParams | None = None,
) -> ZooScenario:
    """Build the marching problem for one zoo case.

    M2 is the zoo shape (the hard target the campaign stresses); M1 is
    a mild seed-derived blob sized so the swarm deploys at a lattice
    pitch safely below communication range.  Everything is a pure
    function of ``(family, seed, params, config)``.
    """
    config = config or ZooConfig()
    m2_unit, params = build_foi(family, seed, params)
    rng = family_rng(family, seed, stream=2)
    radio = RadioSpec.from_comm_range(config.comm_range)
    target_spacing = 0.6 * config.comm_range
    area1 = float(np.sqrt(3.0) / 2.0 * config.robot_count * target_spacing**2)
    harmonics = {
        2: (float(rng.uniform(-0.08, 0.08)), float(rng.uniform(-0.08, 0.08))),
        3: (float(rng.uniform(-0.05, 0.05)), float(rng.uniform(-0.05, 0.05))),
    }
    m1 = FieldOfInterest(
        radial_blob(harmonics), name=f"zoo-M1[{family}:{seed}]"
    ).scaled_to_area(area1)
    swarm = Swarm.deploy_lattice(m1, config.robot_count, radio)

    area2 = area1 * float(rng.uniform(0.8, 1.1))
    m2 = m2_unit.scaled_to_area(area2)
    bearing = float(rng.uniform(0.0, 2.0 * np.pi))
    sep = config.separation_factor * config.comm_range
    offset = (
        m1.centroid
        + sep * np.array([np.cos(bearing), np.sin(bearing)])
        - m2.centroid
    )
    return ZooScenario(
        family=family,
        seed=seed,
        params=params,
        m1=m1,
        m2=m2.translated(offset),
        swarm=swarm,
    )


# ----------------------------------------------------------------------
# Invariant evaluation
# ----------------------------------------------------------------------


def _check_connectivity(result, comm_range: float, resolution: int) -> dict[str, Any]:
    """Definition 2 over sampled instants plus jump left-limits."""
    report = connectivity_report(
        result.trajectory, comm_range, result.boundary_anchors, resolution
    )
    anchors = [int(a) for a in result.boundary_anchors]
    left_isolated = 0
    disc = result.trajectory.discontinuity_times()
    if len(disc):
        for snapshot in result.trajectory.positions_over(disc, side="left"):
            graph = UnitDiskGraph(snapshot, comm_range)
            reached = graph.nodes_connected_to(anchors)
            left_isolated = max(left_isolated, int((~reached).sum()))
    ok = report.connected and left_isolated == 0
    return {
        "ok": ok,
        "max_isolated": report.max_isolated,
        "left_limit_isolated": left_isolated,
        "samples": report.samples,
        "first_failure_time": report.first_failure_time,
    }


def _check_lemma1(result, links, resolution: int) -> dict[str, Any]:
    """``L`` in [0, 1]; ``D`` at or above the matching floor.

    Lemma 1 says maximising ``L`` and minimising ``D`` conflict; its
    hard half is the distance floor: whatever links a plan preserves,
    ``D`` can never undercut the minimum-cost matching between the
    start and final position sets (and a fortiori the per-robot
    straight lines to the plan's own assignment).
    """
    ratio = stable_link_ratio(links, result.trajectory, resolution)
    total = float(result.total_distance)
    start, final = result.start_positions, result.final_positions
    straight = float(np.hypot(*(final - start).T).sum())
    floor = float(matching_cost(start, final, min_cost_matching(start, final)))
    ok = (
        0.0 <= ratio <= 1.0
        and total >= straight - _DISTANCE_TOL
        and total >= floor - _DISTANCE_TOL
    )
    return {
        "ok": ok,
        "L": ratio,
        "D": total,
        "D_straight": straight,
        "D_floor": floor,
    }


def _check_definition2(result, comm_range: float, resolution: int,
                       direct: dict[str, Any]) -> tuple[dict[str, Any], bytes]:
    """Round-trip the plan document and re-verify Definition 2 from it."""
    doc = result_to_dict(result)
    payload = dumps_canonical(doc)
    data = json.loads(payload)
    check_format_version(data)
    trajectory = trajectory_from_dict(data["trajectory"])
    links = LinkTable(
        links=np.asarray(data["links"], dtype=int).reshape(-1, 2),
        comm_range=float(data["comm_range"]),
    )
    report = connectivity_report(
        trajectory, comm_range, data["boundary_anchors"], resolution
    )
    ratio = stable_link_ratio(links, trajectory, resolution)
    finals_match = bool(
        np.allclose(
            np.asarray(data["final_positions"], dtype=float),
            result.final_positions,
        )
    )
    ok = (
        report.connected
        and finals_match
        and abs(ratio - direct["L"]) <= 1e-12
    )
    return (
        {
            "ok": ok,
            "connected": report.connected,
            "finals_match": finals_match,
            "L_roundtrip": ratio,
        },
        payload,
    )


def _check_document(payload: bytes) -> dict[str, Any]:
    """Canonical bytes are a fixed point of parse -> re-serialize."""
    stable = dumps_canonical(json.loads(payload)) == payload
    return {
        "ok": stable,
        "bytes": len(payload),
        "sha256": hashlib.sha256(payload).hexdigest(),
    }


def run_zoo_case(case: ZooCase, config: ZooConfig | None = None) -> dict[str, Any]:
    """Run one zoo cell end to end; always returns a plain document.

    Three outcomes: ``pass`` (every invariant held for every method),
    ``fail`` (some invariant broke - the per-invariant detail says
    which), ``error`` (generation or planning raised; the zoo's
    validity claim failed, which the campaign also counts against the
    family).
    """
    config = config or ZooConfig()
    doc: dict[str, Any] = {
        "family": case.family,
        "seed": case.seed,
    }
    with span("zoo.case", family=case.family, seed=case.seed):
        try:
            scenario = build_zoo_scenario(
                case.family, case.seed, config, params=case.params
            )
        except ReproError as exc:
            params = case.params or _safe_draw(case.family, case.seed)
            doc.update(
                params=params.to_dict() if params else {},
                outcome="error",
                stage="generate",
                error=str(exc),
                methods={},
            )
            return doc
        doc["params"] = scenario.params.to_dict()
        doc["robots"] = scenario.swarm.size
        methods: dict[str, Any] = {}
        failed = False
        errored = False
        for method in config.methods:
            try:
                result = MarchingPlanner(config.marching_config(method)).plan(
                    scenario.swarm, scenario.m2, source_foi=scenario.m1
                )
            except ReproError as exc:
                methods[method] = {
                    "outcome": "error",
                    "stage": "plan",
                    "error": str(exc),
                }
                errored = True
                continue
            conn = _check_connectivity(
                result, scenario.comm_range, config.resolution
            )
            lemma1 = _check_lemma1(result, result.links, config.resolution)
            def2, payload = _check_definition2(
                result, scenario.comm_range, config.resolution, lemma1
            )
            document = _check_document(payload)
            invariants = {
                "connectivity": conn,
                "lemma1": lemma1,
                "definition2": def2,
                "document": document,
            }
            ok = all(inv["ok"] for inv in invariants.values())
            failed = failed or not ok
            methods[method] = {
                "outcome": "pass" if ok else "fail",
                "invariants": invariants,
            }
        doc["methods"] = methods
        doc["outcome"] = (
            "error" if errored else ("fail" if failed else "pass")
        )
    return doc


def _safe_draw(family: str, seed: int) -> ZooParams | None:
    from repro.experiments.zoo.families import draw_params

    try:
        return draw_params(family, seed)
    except ReproError:
        return None


def case_bytes(doc: dict[str, Any]) -> bytes:
    """Canonical bytes of one case document (replay byte-identity)."""
    return dumps_canonical(doc)


def _failing_invariants(doc: dict[str, Any]) -> list[str]:
    if doc["outcome"] == "error":
        return ["generation"]
    failing: set[str] = set()
    for method_doc in doc.get("methods", {}).values():
        if method_doc.get("outcome") == "error":
            failing.add("generation")
        elif method_doc.get("outcome") == "fail":
            for name, inv in method_doc["invariants"].items():
                if not inv["ok"]:
                    failing.add(name)
    return sorted(failing)


def shrink_case(
    doc: dict[str, Any], config: ZooConfig
) -> tuple[dict[str, Any], int]:
    """Greedily shrink a failing case toward milder parameters.

    Tries the one-step reductions of :func:`mild_params` (drop a hole,
    halve roughness, drop a lobe, widen the corridor) and keeps any
    variant that still fails, until the budget is spent or no reduction
    reproduces the failure.  Returns the (possibly reduced) failing
    case document and the number of extra runs spent.
    """
    spent = 0
    current = doc
    params = ZooParams.from_dict(doc["params"]) if doc.get("params") else None
    if params is None:
        return current, spent
    improved = True
    while improved and spent < config.shrink_budget:
        improved = False
        for candidate in mild_params(doc["family"], params):
            if spent >= config.shrink_budget:
                break
            trial = run_zoo_case(
                ZooCase(doc["family"], doc["seed"], params=candidate), config
            )
            spent += 1
            if trial["outcome"] in ("fail", "error"):
                current, params, improved = trial, candidate, True
                break
    return current, spent


def _counterexample(doc: dict[str, Any]) -> dict[str, Any]:
    """The replayable triple (plus verdict digest) for one failing case."""
    return {
        "family": doc["family"],
        "seed": doc["seed"],
        "params": doc.get("params", {}),
        "invariants": _failing_invariants(doc),
        "case_sha256": hashlib.sha256(case_bytes(doc)).hexdigest(),
    }


def replay_counterexample(
    entry: dict[str, Any], config: ZooConfig | None = None
) -> tuple[dict[str, Any], bool]:
    """Re-run a persisted counterexample triple.

    Returns the fresh case document and whether it reproduces the
    recorded run byte-identically (same canonical case bytes, hence
    the same failure).
    """
    try:
        family = str(entry["family"])
        seed = int(entry["seed"])
        params = ZooParams.from_dict(entry["params"]) if entry.get("params") else None
    except (KeyError, TypeError, ValueError) as exc:
        raise ScenarioError(f"malformed counterexample entry: {exc}") from exc
    doc = run_zoo_case(ZooCase(family, seed, params=params), config or ZooConfig())
    recorded = entry.get("case_sha256")
    matches = (
        recorded is None
        or hashlib.sha256(case_bytes(doc)).hexdigest() == recorded
    )
    return doc, matches


# ----------------------------------------------------------------------
# Campaign driver
# ----------------------------------------------------------------------


def _zoo_task(task) -> dict[str, Any]:
    """Module-level (picklable) worker task for :class:`ParallelMap`."""
    case, config = task
    return run_zoo_case(case, config)


def zoo_campaign(
    families: Sequence[str] = FAMILIES,
    seeds: Sequence[int] = (0, 1, 2),
    config: ZooConfig | None = None,
    workers: int | None = None,
    backend: str = "process",
) -> dict[str, Any]:
    """Run the full (family, seed) matrix and aggregate a summary.

    Returns a plain-JSON dict: one case document per cell in
    deterministic matrix order, per-family aggregates, and shrunk
    replayable counterexamples for every failure.  Identical for any
    ``workers`` count; serialize with :func:`summary_bytes` to compare
    runs (the digest of every plan document rides along, so the
    comparison covers plan bytes too).
    """
    config = config or ZooConfig()
    unknown = [f for f in families if f not in FAMILIES]
    if unknown:
        raise ScenarioError(
            f"unknown zoo families {unknown}; valid: {list(FAMILIES)}"
        )
    cases = [ZooCase(family, seed) for family in families for seed in seeds]
    workers = resolve_workers(workers)
    with span("zoo.campaign", cases=len(cases), workers=workers):
        if workers > 1 and len(cases) > 1:
            engine = ParallelMap(backend=backend, workers=workers)
            docs = engine.map(_zoo_task, [(c, config) for c in cases])
        else:
            docs = [run_zoo_case(c, config) for c in cases]

        counterexamples = []
        shrunk_runs = 0
        for doc in docs:
            if doc["outcome"] in ("fail", "error"):
                reduced, spent = (
                    shrink_case(doc, config) if config.shrink else (doc, 0)
                )
                shrunk_runs += spent
                counterexamples.append(_counterexample(reduced))

    per_family: dict[str, Any] = {}
    for family in families:
        fam_docs = [d for d in docs if d["family"] == family]
        fam_inv: dict[str, int] = {name: 0 for name in INVARIANTS}
        for d in fam_docs:
            for name in _failing_invariants(d):
                if name in fam_inv:
                    fam_inv[name] += 1
        per_family[family] = {
            "cases": len(fam_docs),
            "passed": sum(1 for d in fam_docs if d["outcome"] == "pass"),
            "failed": sum(1 for d in fam_docs if d["outcome"] == "fail"),
            "errors": sum(1 for d in fam_docs if d["outcome"] == "error"),
            "invariant_failures": fam_inv,
        }
    return {
        "config": config.to_dict(),
        "matrix": {"families": list(families), "seeds": list(seeds)},
        "cases": docs,
        "families": per_family,
        "counterexamples": counterexamples,
        "summary": {
            "cases": len(docs),
            "passed": sum(1 for d in docs if d["outcome"] == "pass"),
            "failed": sum(1 for d in docs if d["outcome"] == "fail"),
            "errors": sum(1 for d in docs if d["outcome"] == "error"),
            "shrink_runs": shrunk_runs,
            "all_pass": all(d["outcome"] == "pass" for d in docs),
        },
    }


def summary_bytes(summary: dict[str, Any]) -> bytes:
    """Canonical bytes of a campaign summary (byte-identity checks)."""
    return dumps_canonical(summary)


def render_zoo(summary: dict[str, Any]) -> str:
    """Human-readable per-family invariant table (the CLI's output)."""
    rows = []
    for family, agg in summary["families"].items():
        inv = agg["invariant_failures"]
        rows.append([
            family,
            agg["cases"],
            agg["passed"],
            agg["failed"],
            agg["errors"],
        ] + [("ok" if inv[name] == 0 else f"{inv[name]} FAIL")
             for name in INVARIANTS])
    table = format_table(
        ["family", "cases", "pass", "fail", "err",
         "C=1", "lemma1", "def2", "doc"],
        rows,
    )
    agg = summary["summary"]
    lines = [table, (
        f"{agg['passed']}/{agg['cases']} cases passed every invariant; "
        f"{agg['failed']} failed, {agg['errors']} errored"
    )]
    for entry in summary["counterexamples"]:
        triple = dumps_canonical(
            {k: entry[k] for k in ("family", "seed", "params")}
        ).decode("utf-8")
        lines.append(
            f"counterexample [{','.join(entry['invariants'])}] "
            f"replay with: python -m repro zoo --replay '{triple}'"
        )
    return "\n".join(lines)
