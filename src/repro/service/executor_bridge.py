"""Bridge between the job store and the ``repro.exec`` engine.

Dispatcher threads claim jobs off the :class:`~repro.service.jobs.JobQueue`
and run each one through its own :class:`repro.exec.ParallelMap` - a
single-task map, which buys exactly the engine semantics the service
needs without re-implementing them: a per-job timeout that cannot hang
the dispatcher, bounded retries, and per-task span/metric collection
that merges back into the *server's* tracer and metrics registry.

Each job produces the span tree the service promises per request::

    service.job
      service.queue_wait   (true queued duration, absorbed as a record)
      service.solve
        exec.map ... (the engine + whatever the planner emits)
      service.serialize

and feeds the two histograms the HTTP layer reads back out:
``service.queue_wait_s`` and ``service.job_duration_s`` (the latter is
what ``Retry-After`` estimates are computed from).

The engine backend is ``thread`` by default: the solve shares the
service's in-process content cache (deduplicated scenario requests hit
the same disk-map entries), and numpy releases the GIL enough for the
service's granularity.  A runner closure does not need to pickle on
this backend.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable

from repro.errors import ExecutionError
from repro.exec import ParallelMap
from repro.io import dumps_canonical
from repro.obs import Metrics, Tracer, activate, activate_metrics, span

from repro.service.jobs import Job, JobQueue

__all__ = ["ExecutorBridge"]


class ExecutorBridge:
    """Runs queued jobs on :class:`ParallelMap` workers.

    Parameters
    ----------
    queue : JobQueue
    runner : callable
        ``runner(request) -> JSON-serialisable dict``; executed inside a
        ParallelMap worker, so it must not depend on ambient context
        from the dispatcher thread (bind caches into the callable).
    dispatchers : int
        Number of dispatcher threads = jobs in flight concurrently.
    task_backend : {"thread", "serial", "process"}
        Engine backend for the per-job map.  ``process`` requires a
        picklable runner and forfeits in-process cache sharing.
    job_timeout_s : float, optional
        Per-job wall-clock budget, enforced by the engine (a timed-out
        job fails; its abandoned worker cannot wedge the dispatcher).
    retries : int
        Extra attempts for a failed or timed-out job.
    tracer, metrics
        The *server's* observability objects; every job runs under them.
    """

    def __init__(
        self,
        queue: JobQueue,
        runner: Callable[[dict[str, Any]], Any],
        dispatchers: int = 2,
        task_backend: str = "thread",
        job_timeout_s: float | None = None,
        retries: int = 1,
        tracer: Tracer | None = None,
        metrics: Metrics | None = None,
    ) -> None:
        if dispatchers < 1:
            raise ValueError("dispatchers must be positive")
        self.queue = queue
        self.runner = runner
        self.dispatchers = dispatchers
        self.task_backend = task_backend
        self.job_timeout_s = job_timeout_s
        self.retries = retries
        self.tracer = tracer
        self.metrics = metrics if metrics is not None else Metrics()
        self._threads: list[threading.Thread] = []
        self._started = False
        #: set when a drain begins; interrupt-aware runners poll it at
        #: epoch boundaries and checkpoint-and-release instead of
        #: finishing (or losing) a long mission.
        self._drain_event = threading.Event()

    # ------------------------------------------------------------------

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        for i in range(self.dispatchers):
            thread = threading.Thread(
                target=self._dispatch_loop,
                name=f"repro-service-dispatch-{i}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def request_drain(self) -> None:
        """Ask in-flight interrupt-aware jobs to wind down gracefully.

        Missions see this at their next epoch boundary, checkpoint, and
        are released back to the queue (parked until a restart resumes
        them); short jobs simply finish.
        """
        self._drain_event.set()

    @property
    def draining(self) -> bool:
        return self._drain_event.is_set()

    def stop(self, drain: bool = True, timeout: float | None = 30.0) -> None:
        """Close the queue and join the dispatchers.

        With ``drain`` (the default) dispatchers finish every queued
        job first; without it they exit after their current job and the
        backlog is cancelled.  Either way in-flight interrupt-aware
        jobs (missions) are asked to checkpoint-and-release at their
        next epoch boundary rather than run to the end.
        """
        self._drain_event.set()
        self.queue.close(drain=drain)
        for thread in self._threads:
            thread.join(timeout)
        self._threads = [t for t in self._threads if t.is_alive()]

    # ------------------------------------------------------------------

    def _dispatch_loop(self) -> None:
        while True:
            job = self.queue.claim(timeout=0.5)
            if job is None:
                if self.queue.closed:
                    return
                continue
            with activate(self.tracer), activate_metrics(self.metrics):
                self._run_job(job)

    def _run_job(self, job: Job) -> None:
        metrics = self.metrics
        shard = self.queue.shard
        queue_wait = (job.started_at or 0.0) - job.submitted_at
        metrics.histogram("service.queue_wait_s").observe(queue_wait)
        metrics.gauge("service.queue.depth").set(self.queue.depth())
        if shard is not None:
            # Per-shard claim latency: how long this job sat queued on
            # *this* shard before a dispatcher claimed it.  The loadgen
            # report reads these to attribute tail latency to a shard.
            metrics.histogram(
                f"service.shard.{shard}.claim_latency_s"
            ).observe(queue_wait)
            metrics.gauge(f"service.shard.{shard}.queue.depth").set(
                self.queue.depth()
            )
        self.queue.publish(
            job.job_id, "claimed", queue_wait_s=queue_wait, shard=shard
        )
        with span(
            "service.job", job_id=job.job_id, priority=job.priority
        ) as job_span:
            self._absorb_queue_wait_span(job, queue_wait)
            engine = ParallelMap(
                backend=self.task_backend,
                # Two workers keeps the engine on its pooled path (one
                # worker degrades to serial, which cannot enforce the
                # per-job timeout); only one ever gets a task.
                workers=2,
                timeout=self.job_timeout_s,
                retries=self.retries,
                seed=0,
                collect_obs=True,
            )
            runner = self.runner
            progress_bound = False
            in_process = self.task_backend in ("thread", "serial")
            if getattr(runner, "supports_progress", False) and in_process:
                # Live streaming: the runner emits (kind, data) events
                # straight into the job's event log as the mission
                # advances.  Only in-process backends can share the
                # queue; a process backend falls back to the post-hoc
                # document scan below.
                interrupt = None
                if getattr(self.runner, "supports_interrupt", False):
                    interrupt = self._drain_event.is_set
                runner = _with_progress(
                    runner, self.queue, job.job_id, interrupt=interrupt
                )
                progress_bound = True
            t0 = time.monotonic()
            try:
                with span("service.solve", job_id=job.job_id):
                    (doc,) = engine.map(runner, [job.request])
                if (
                    isinstance(doc, dict)
                    and doc.get("kind") == "mission_interrupted"
                ):
                    # The mission honoured a drain interrupt: its
                    # completed epochs are checkpointed, so park the
                    # job for the next process instead of failing it.
                    epochs_done = int(doc.get("epochs_completed", 0))
                    self.queue.publish(
                        job.job_id, "interrupted",
                        epochs_completed=epochs_done,
                    )
                    self.queue.release(job.job_id)
                    metrics.counter("service.jobs.interrupted").inc()
                    job_span.set_attributes(
                        outcome="interrupted", epochs_completed=epochs_done
                    )
                    return
                t_solved = time.monotonic()
                self.queue.publish(
                    job.job_id, "phase", phase="solve",
                    duration_s=t_solved - t0,
                )
                for payload_doc in self._recovery_metrics(doc):
                    # Chaos-style documents carry RecoveryMetrics per
                    # case; stream them so a mission operator watching
                    # the job sees recovery outcomes as they land.
                    self.queue.publish(
                        job.job_id, "recovery", **payload_doc
                    )
                if not progress_bound:
                    for kind, payload_doc in _mission_events(doc):
                        self.queue.publish(job.job_id, kind, **payload_doc)
                with span("service.serialize", job_id=job.job_id):
                    payload = dumps_canonical(doc)
                self.queue.publish(
                    job.job_id, "phase", phase="serialize",
                    duration_s=time.monotonic() - t_solved,
                )
            except ExecutionError as exc:
                job_span.set_attributes(outcome="failed")
                metrics.counter("service.jobs.failed").inc()
                self.queue.fail(job.job_id, f"ExecutionError: {exc}")
                return
            except Exception as exc:  # runner bugs must not kill dispatchers
                job_span.set_attributes(outcome="failed")
                metrics.counter("service.jobs.failed").inc()
                self.queue.fail(job.job_id, f"{type(exc).__name__}: {exc}")
                return
            metrics.histogram("service.job_duration_s").observe(
                time.monotonic() - t0
            )
            metrics.counter("service.jobs.solved").inc()
            job_span.set_attributes(outcome="done", payload_bytes=len(payload))
            self.queue.complete(job.job_id, payload)

    @staticmethod
    def _recovery_metrics(doc: Any):
        """RecoveryMetrics payloads inside a result document, if any.

        Recognises the chaos-sweep document shape (``cases`` entries
        with ``outcome == "recovered"`` carrying a ``metrics`` dict) so
        fault-injected mission jobs stream their recovery outcomes;
        plain plan documents yield nothing.
        """
        if not isinstance(doc, dict):
            return
        for case in doc.get("cases") or []:
            if (
                isinstance(case, dict)
                and case.get("outcome") == "recovered"
                and isinstance(case.get("metrics"), dict)
            ):
                yield {
                    "scenario_id": case.get("scenario_id"),
                    "archetype": case.get("archetype"),
                    "seed": case.get("seed"),
                    "metrics": case["metrics"],
                }

    def _absorb_queue_wait_span(self, job: Job, queue_wait: float) -> None:
        """Inject the already-elapsed queue wait as a real span record."""
        tracer = self.tracer
        if tracer is None or not tracer.enabled:
            return
        tracer.absorb_records([
            {
                "name": "service.queue_wait",
                "span_id": 0,
                "parent_id": None,
                "depth": 1,
                "t_start": 0.0,
                "duration_s": queue_wait,
                "attributes": {"job_id": job.job_id, "origin": "service"},
            }
        ])


def _with_progress(
    runner: Callable[..., Any],
    queue: JobQueue,
    job_id: str,
    interrupt: Callable[[], bool] | None = None,
) -> Callable[[dict[str, Any]], Any]:
    """Bind a runner's ``progress`` callback (and drain interrupt) to a job.

    The callback publishes best-effort: a job evicted mid-run (TTL
    race) must not kill the solve that is producing its result.
    ``interrupt`` (the bridge's drain event, when the runner advertises
    ``supports_interrupt``) lets a mission checkpoint-and-release at an
    epoch boundary instead of being lost to a shutdown.
    """

    def progress(kind: str, data: dict[str, Any]) -> None:
        try:
            queue.publish(job_id, kind, **data)
        except Exception:
            pass

    def run(request: dict[str, Any]) -> Any:
        if interrupt is not None:
            return runner(request, progress=progress, interrupt=interrupt)
        return runner(request, progress=progress)

    return run


def _mission_events(doc: Any):
    """Replay a mission document's epoch/plan_diff/recovery events.

    The post-hoc fallback for runners that could not stream live (a
    process task backend cannot share the queue object).  Latency
    fields are absent here - they exist only on the live path.
    """
    if not isinstance(doc, dict) or doc.get("kind") != "mission":
        return
    for record in doc.get("epochs") or []:
        if not isinstance(record, dict):
            continue
        for recovery in record.get("recoveries") or []:
            yield "recovery", dict(recovery)
        diff = record.get("plan_diff")
        if isinstance(diff, dict):
            yield "plan_diff", dict(diff)
        yield "epoch", {
            "epoch": record.get("epoch"),
            "robots": record.get("robots"),
            "cache_hits": (diff or {}).get("cache_hits"),
            "cache_misses": (diff or {}).get("cache_misses"),
            "c_violations": record.get("c_violations"),
        }
