"""Structural tests of the public API surface.

Catches export drift: every name in a package's ``__all__`` must
resolve, and the curated top-level surface must stay importable.
"""

import importlib

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.baselines",
    "repro.coverage",
    "repro.distributed",
    "repro.distributed.protocols",
    "repro.experiments",
    "repro.foi",
    "repro.geometry",
    "repro.harmonic",
    "repro.marching",
    "repro.mesh",
    "repro.metrics",
    "repro.network",
    "repro.obs",
    "repro.robots",
    "repro.viz",
]


class TestExports:
    @pytest.mark.parametrize("name", PACKAGES)
    def test_all_names_resolve(self, name):
        module = importlib.import_module(name)
        assert hasattr(module, "__all__"), f"{name} lacks __all__"
        for symbol in module.__all__:
            assert hasattr(module, symbol), f"{name}.{symbol} missing"

    @pytest.mark.parametrize("name", PACKAGES)
    def test_all_sorted_unique(self, name):
        module = importlib.import_module(name)
        exported = list(module.__all__)
        assert len(set(exported)) == len(exported), f"{name} duplicates"

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_headline_symbols(self):
        from repro import (  # noqa: F401
            FieldOfInterest,
            MarchingConfig,
            MarchingPlanner,
            RadioSpec,
            Swarm,
        )

    def test_errors_rooted(self):
        from repro import errors

        for name in errors.__dict__:
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                if obj is not errors.ReproError:
                    assert issubclass(obj, errors.ReproError)

    def test_docstrings_on_public_callables(self):
        """Every public callable exported at the top level is documented."""
        for symbol in repro.__all__:
            obj = getattr(repro, symbol)
            if callable(obj):
                assert obj.__doc__, f"repro.{symbol} lacks a docstring"
