"""Tests for content-addressed caching and its disk-map wiring."""

import numpy as np
import pytest

from repro.exec import (
    ContentCache,
    DiskStore,
    LRUCache,
    activate_cache,
    disk_backed_cache,
    get_cache,
    set_cache,
    stable_hash,
)
from repro.harmonic import compute_disk_map
from repro.harmonic.diskmap import disk_map_cache_key
from repro.obs import Metrics, activate_metrics


@pytest.fixture
def metrics():
    m = Metrics()
    with activate_metrics(m):
        yield m


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash(1, "a", 2.5) == stable_hash(1, "a", 2.5)

    def test_dict_key_order_irrelevant(self):
        assert stable_hash({"a": 1, "b": 2}) == stable_hash({"b": 2, "a": 1})

    def test_int_float_distinct(self):
        assert stable_hash(1) != stable_hash(1.0)

    def test_str_bytes_distinct(self):
        assert stable_hash("ab") != stable_hash(b"ab")

    def test_nesting_is_unambiguous(self):
        assert stable_hash(["ab"], ["c"]) != stable_hash(["a"], ["bc"])
        assert stable_hash([[1], [2]]) != stable_hash([[1, 2]])

    def test_ndarray_content(self):
        a = np.arange(6, dtype=float)
        assert stable_hash(a) == stable_hash(a.copy())
        assert stable_hash(a) != stable_hash(a.reshape(2, 3))
        assert stable_hash(a) != stable_hash(a.astype(np.int64))
        b = a.copy()
        b[3] = 99.0
        assert stable_hash(a) != stable_hash(b)

    def test_noncontiguous_array_equals_contiguous(self):
        a = np.arange(12, dtype=float).reshape(3, 4)
        assert stable_hash(a[:, ::2]) == stable_hash(
            np.ascontiguousarray(a[:, ::2])
        )

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError):
            stable_hash(object())

    def test_none_and_bool(self):
        assert stable_hash(None) != stable_hash(False)
        assert stable_hash(True) != stable_hash(1)


class TestLRUCache:
    def test_eviction_order(self):
        lru = LRUCache(capacity=2)
        lru.put("a", 1)
        lru.put("b", 2)
        lru.get("a")  # refresh "a": "b" becomes the eviction victim
        lru.put("c", 3)
        assert "a" in lru and "c" in lru and "b" not in lru

    def test_overwrite_does_not_grow(self):
        lru = LRUCache(capacity=2)
        lru.put("a", 1)
        lru.put("a", 2)
        assert len(lru) == 1 and lru.get("a") == 2

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            LRUCache(capacity=0)


class TestDiskStore:
    def test_round_trip(self, tmp_path):
        store = DiskStore(tmp_path)
        key = stable_hash("entry")
        store.put(key, {"x": np.arange(3)})
        out = store.get(key)
        assert np.array_equal(out["x"], np.arange(3))
        assert len(store) == 1

    def test_missing_key(self, tmp_path):
        assert DiskStore(tmp_path).get(stable_hash("nope")) is None

    def test_corrupt_entry_reads_as_miss_and_is_removed(self, tmp_path):
        store = DiskStore(tmp_path)
        key = stable_hash("entry")
        store.put(key, 123)
        path = store._path(key)
        path.write_bytes(b"not a pickle")
        assert store.get(key) is None
        assert not path.exists()

    def test_no_fsync_mode_still_round_trips(self, tmp_path):
        store = DiskStore(tmp_path, fsync=False)
        assert store.fsync is False
        key = stable_hash("entry")
        store.put(key, {"x": 1})
        assert store.get(key) == {"x": 1}

    def test_tmp_droppings_swept_on_startup(self, metrics, tmp_path):
        store = DiskStore(tmp_path)
        key = stable_hash("entry")
        store.put(key, 123)
        # A writer killed between mkstemp and os.replace leaves these.
        (tmp_path / "dead-writer.tmp").write_text("")
        (store._path(key).parent / "mid-shard.tmp").write_text("")
        reopened = DiskStore(tmp_path)
        assert reopened.swept_tmp == 2
        assert not list(tmp_path.glob("**/*.tmp"))
        assert metrics.counter("cache.diskstore.tmp_swept").value == 2
        # The committed entry is untouched by the sweep.
        assert reopened.get(key) == 123

    def test_clean_startup_sweeps_nothing(self, tmp_path):
        assert DiskStore(tmp_path).swept_tmp == 0


class TestContentCache:
    def test_memory_hit_and_metrics(self, metrics):
        cache = ContentCache(capacity=8)
        key = stable_hash("k")
        assert cache.get("ns", key) is None
        cache.put("ns", key, "value")
        assert cache.get("ns", key) == "value"
        assert metrics.counter("cache.ns.hits").value == 1
        assert metrics.counter("cache.ns.misses").value == 1
        assert metrics.counter("cache.ns.stores").value == 1
        assert ContentCache.hit_rate("ns") == 0.5

    def test_namespaces_do_not_collide(self, metrics):
        cache = ContentCache()
        key = stable_hash("k")
        cache.put("ns1", key, "one")
        assert cache.get("ns2", key) is None

    def test_disk_promotion(self, metrics, tmp_path):
        first = ContentCache(disk=DiskStore(tmp_path))
        key = stable_hash("k")
        first.put("ns", key, [1, 2, 3])
        # A fresh cache (cold memory) over the same directory: disk hit.
        second = ContentCache(disk=DiskStore(tmp_path))
        assert second.get("ns", key) == [1, 2, 3]
        assert metrics.counter("cache.ns.disk_hits").value == 1
        # Promoted to memory: the next get does not touch disk again.
        assert second.get("ns", key) == [1, 2, 3]
        assert metrics.counter("cache.ns.disk_hits").value == 1

    def test_activate_cache_scoping(self):
        outer = get_cache()
        mine = ContentCache()
        with activate_cache(mine):
            assert get_cache() is mine
            with activate_cache(None):
                assert get_cache() is None
            assert get_cache() is mine
        assert get_cache() is outer

    def test_set_cache(self):
        outer = get_cache()
        try:
            set_cache(None)
            assert get_cache() is None
        finally:
            set_cache(outer)

    def test_disk_backed_cache_factory(self, tmp_path):
        cache = disk_backed_cache(tmp_path / "store", capacity=4)
        assert isinstance(cache.disk, DiskStore)
        assert (tmp_path / "store").is_dir()


class TestDiskMapCaching:
    def test_identical_mesh_hits(self, square_foi_mesh, metrics):
        with activate_cache(ContentCache()):
            a = compute_disk_map(square_foi_mesh.mesh)
            b = compute_disk_map(square_foi_mesh.mesh)
        assert metrics.counter("cache.harmonic.diskmap.misses").value == 1
        assert metrics.counter("cache.harmonic.diskmap.hits").value == 1
        assert a.disk_positions.tobytes() == b.disk_positions.tobytes()

    def test_translated_mesh_shares_entry_bitwise(self, square_foi_mesh, metrics):
        mesh = square_foi_mesh.mesh
        moved = mesh.with_vertices(mesh.vertices + np.array([5000.0, -320.0]))
        assert disk_map_cache_key(
            mesh, "chord", "linear", 1e-7
        ) == disk_map_cache_key(moved, "chord", "linear", 1e-7)
        with activate_cache(ContentCache()):
            a = compute_disk_map(mesh)
            b = compute_disk_map(moved)
        assert metrics.counter("cache.harmonic.diskmap.hits").value == 1
        assert a.disk_positions.tobytes() == b.disk_positions.tobytes()
        # The hit still carries the mesh's own geographic coordinates.
        assert np.allclose(b.source.vertices, moved.vertices)

    def test_scaled_mesh_misses(self, square_foi_mesh, metrics):
        mesh = square_foi_mesh.mesh
        scaled = mesh.with_vertices(mesh.vertices * 2.0)
        assert disk_map_cache_key(
            mesh, "chord", "linear", 1e-7
        ) != disk_map_cache_key(scaled, "chord", "linear", 1e-7)

    def test_solver_params_in_key(self, square_foi_mesh):
        mesh = square_foi_mesh.mesh
        base = disk_map_cache_key(mesh, "chord", "linear", 1e-7)
        assert base != disk_map_cache_key(mesh, "uniform", "linear", 1e-7)
        assert base != disk_map_cache_key(mesh, "chord", "iterative", 1e-7)
        assert base != disk_map_cache_key(mesh, "chord", "linear", 1e-5)

    def test_use_cache_false_bypasses(self, square_foi_mesh, metrics):
        with activate_cache(ContentCache()):
            compute_disk_map(square_foi_mesh.mesh, use_cache=False)
        assert metrics.counter("cache.harmonic.diskmap.misses").value == 0
        assert metrics.counter("cache.harmonic.diskmap.stores").value == 0

    def test_cached_map_is_valid_embedding(self, square_foi_mesh, metrics):
        with activate_cache(ContentCache()):
            compute_disk_map(square_foi_mesh.mesh)
            dm = compute_disk_map(square_foi_mesh.mesh)
        assert dm.is_embedding()
        assert dm.max_radius() == pytest.approx(1.0)

    def test_cold_vs_warm_disk_identical(self, square_foi_mesh, metrics, tmp_path):
        mesh = square_foi_mesh.mesh
        with activate_cache(disk_backed_cache(tmp_path)):
            cold = compute_disk_map(mesh)
        # A fresh process would start with an empty memory tier too; a
        # new ContentCache over the same directory models that.
        with activate_cache(disk_backed_cache(tmp_path)):
            warm = compute_disk_map(mesh)
        assert metrics.counter("cache.harmonic.diskmap.disk_hits").value == 1
        assert cold.disk_positions.tobytes() == warm.disk_positions.tobytes()
