"""Density functions for density-aware coverage (paper Sec. IV-E).

The centroid of a Voronoi region can be computed "with respect to a
given density function", letting the swarm concentrate where the task
demands ("more robots will be deployed near the center of a fire with
higher temperature").  A density function maps an ``(m, 2)`` array of
points to an ``(m,)`` array of positive weights.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import CoverageError
from repro.foi.region import FieldOfInterest
from repro.geometry.vec import as_points

__all__ = [
    "DensityFunction",
    "uniform_density",
    "gaussian_hotspot_density",
    "hole_proximity_density",
    "validate_density",
]

DensityFunction = Callable[[np.ndarray], np.ndarray]


def uniform_density() -> DensityFunction:
    """The constant density 1 (plain centroidal Voronoi)."""

    def density(points: np.ndarray) -> np.ndarray:
        return np.ones(len(as_points(points)))

    return density


def gaussian_hotspot_density(
    center, sigma: float, peak: float = 4.0, floor: float = 1.0
) -> DensityFunction:
    """Density peaking at ``center`` (e.g. the centre of a fire).

    ``floor + peak * exp(-|x - c|^2 / (2 sigma^2))``.
    """
    c = np.asarray(center, dtype=float)
    if sigma <= 0:
        raise CoverageError("sigma must be positive")
    if peak < 0 or floor <= 0:
        raise CoverageError("peak must be >= 0 and floor > 0")

    def density(points: np.ndarray) -> np.ndarray:
        pts = as_points(points)
        d2 = ((pts - c) ** 2).sum(axis=1)
        return floor + peak * np.exp(-d2 / (2.0 * sigma * sigma))

    return density


def hole_proximity_density(
    foi: FieldOfInterest, sigma: float, peak: float = 4.0, floor: float = 1.0
) -> DensityFunction:
    """Density increasing toward the FoI's holes (Fig. 6's requirement).

    The paper's modified scenario 4 asks that "the closer to the hole,
    the more mobile robots are needed"; the weight decays exponentially
    with distance to the nearest hole boundary.

    Raises
    ------
    CoverageError
        If the FoI has no hole (the density would be constant).
    """
    if not foi.has_holes:
        raise CoverageError("hole_proximity_density needs a FoI with holes")
    if sigma <= 0:
        raise CoverageError("sigma must be positive")

    def density(points: np.ndarray) -> np.ndarray:
        pts = as_points(points)
        d = foi.hole_distances(pts)
        return floor + peak * np.exp(-d / sigma)

    return density


def validate_density(density: DensityFunction, points) -> np.ndarray:
    """Evaluate a density and verify the output contract.

    Returns the weights; raises :class:`CoverageError` on shape
    mismatch, non-finite values, or non-positive weights.
    """
    pts = as_points(points)
    w = np.asarray(density(pts), dtype=float)
    if w.shape != (len(pts),):
        raise CoverageError(f"density returned shape {w.shape}, expected ({len(pts)},)")
    if not np.all(np.isfinite(w)):
        raise CoverageError("density returned non-finite weights")
    if np.any(w <= 0):
        raise CoverageError("density weights must be strictly positive")
    return w
