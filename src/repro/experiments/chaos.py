"""Seeded chaos sweep: fault archetypes x scenarios x seeds.

``python -m repro chaos`` (and the CI chaos-smoke job) runs the
resilient executor of :mod:`repro.faults` over a matrix of scenario
shapes and fault archetypes.  Every case is fully determined by its
``(scenario, archetype, seed)`` triple - the summary document is
byte-identical across runs and worker counts, which the smoke script
asserts by comparing :func:`repro.io.dumps_canonical` bytes.

The sweep reuses the paper's scenario FoI shapes at a reduced robot
count so a full matrix stays CI-sized (each case plans, injects and
replans in well under a second); the fault mechanics are identical to
full-scale runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.coverage import LloydConfig
from repro.errors import UnrecoverableError
from repro.exec import ParallelMap, resolve_workers
from repro.experiments.scenarios import get_scenario
from repro.experiments.tables import format_table
from repro.faults import build_archetype_schedule, execute_with_faults
from repro.io import dumps_canonical
from repro.marching import MarchingConfig, MarchingPlanner
from repro.marching.result import MarchingResult
from repro.obs import span
from repro.robots import RadioSpec, Swarm

__all__ = [
    "ChaosCase",
    "ChaosConfig",
    "DEFAULT_ARCHETYPES",
    "DEFAULT_SCENARIOS",
    "chaos_sweep",
    "render_chaos",
    "run_chaos_case",
    "summary_bytes",
]

DEFAULT_SCENARIOS = (1, 2, 4)
DEFAULT_ARCHETYPES = ("single", "cluster", "cascade")


@dataclass(frozen=True)
class ChaosConfig:
    """Size/resolution knobs of a chaos sweep.

    Attributes
    ----------
    robot_count : int
        Robots per case (reduced from the scenarios' 144 to keep a
        full matrix CI-sized; the paper's M1 area needs >= ~57 robots
        for the starting lattice to stay within communication range,
        and the default 81 leaves enough density headroom that the
        survivors' coverage of M2 stays connectable after crashes).
    separation_factor : float
        M1-M2 centroid distance in communication ranges.
    foi_target_points, grid_target : int
        Planner resolution knobs.
    resolution : int
        Metric sampling resolution (connectivity, ``L``).
    """

    robot_count: int = 81
    separation_factor: float = 6.0
    foi_target_points: int = 150
    grid_target: int = 500
    resolution: int = 8

    def marching_config(self) -> MarchingConfig:
        return MarchingConfig(
            foi_target_points=self.foi_target_points,
            lloyd=LloydConfig(grid_target=self.grid_target),
        )


@dataclass(frozen=True)
class ChaosCase:
    """One (scenario, archetype, seed) cell of the sweep matrix."""

    scenario_id: int
    archetype: str
    seed: int


# Baseline plans depend only on (scenario, config), not on the fault
# schedule, so each worker process computes them once per scenario.
_PLAN_CACHE: dict[tuple, tuple[Swarm, Any, MarchingResult]] = {}


def _baseline(scenario_id: int, config: ChaosConfig):
    key = (scenario_id, config)
    if key in _PLAN_CACHE:
        return _PLAN_CACHE[key]
    spec = get_scenario(scenario_id)
    m1, m2 = spec.build(config.separation_factor)
    radio = RadioSpec.from_comm_range(spec.comm_range)
    swarm = Swarm.deploy_lattice(m1, config.robot_count, radio)
    original = MarchingPlanner(config.marching_config()).plan(
        swarm, m2, source_foi=m1
    )
    _PLAN_CACHE[key] = (swarm, m2, original)
    return _PLAN_CACHE[key]


def run_chaos_case(
    case: ChaosCase, config: ChaosConfig | None = None
) -> dict[str, Any]:
    """Run one fault-injected mission; always returns a plain document.

    The executor's two outcomes map onto two document shapes:
    ``outcome: "recovered"`` carries the recovery metrics, and
    ``outcome: "unrecoverable"`` carries the typed error's stage - the
    sweep never swallows a third state.
    """
    config = config or ChaosConfig()
    swarm, m2, original = _baseline(case.scenario_id, config)
    schedule = build_archetype_schedule(
        case.archetype,
        swarm.positions,
        seed=case.seed,
        name=f"s{case.scenario_id}-{case.archetype}-{case.seed}",
    )
    doc: dict[str, Any] = {
        "scenario_id": case.scenario_id,
        "archetype": case.archetype,
        "seed": case.seed,
        "robots": swarm.size,
    }
    with span(
        "chaos.case",
        scenario=case.scenario_id,
        archetype=case.archetype,
        seed=case.seed,
    ):
        try:
            report = execute_with_faults(
                swarm,
                m2,
                schedule,
                config=config.marching_config(),
                resolution=config.resolution,
                original=original,
            )
        except UnrecoverableError as exc:
            doc.update(
                outcome="unrecoverable",
                stage=exc.stage,
                survivors=exc.survivors,
                error=str(exc),
            )
            return doc
    doc.update(
        outcome="recovered",
        survivors=len(report.survivor_ids),
        metrics=report.metrics.to_dict(),
    )
    return doc


def _chaos_task(task) -> dict[str, Any]:
    """Module-level (picklable) worker task for :class:`ParallelMap`."""
    case, config = task
    return run_chaos_case(case, config)


def chaos_sweep(
    scenario_ids: Sequence[int] = DEFAULT_SCENARIOS,
    archetypes: Sequence[str] = DEFAULT_ARCHETYPES,
    seeds: Sequence[int] = (0,),
    config: ChaosConfig | None = None,
    workers: int | None = None,
    backend: str = "process",
) -> dict[str, Any]:
    """Run the full fault matrix and aggregate a summary document.

    Returns a plain-JSON dict with one entry per case (in deterministic
    matrix order) plus aggregate counts.  Identical for any ``workers``
    count; serialize with :func:`summary_bytes` to compare runs.
    """
    config = config or ChaosConfig()
    cases = [
        ChaosCase(scenario_id=sid, archetype=arch, seed=seed)
        for sid in scenario_ids
        for arch in archetypes
        for seed in seeds
    ]
    workers = resolve_workers(workers)
    with span("chaos.sweep", cases=len(cases), workers=workers):
        if workers > 1 and len(cases) > 1:
            engine = ParallelMap(backend=backend, workers=workers)
            docs = engine.map(_chaos_task, [(c, config) for c in cases])
        else:
            docs = [run_chaos_case(c, config) for c in cases]

    recovered = [d for d in docs if d["outcome"] == "recovered"]
    unrecoverable = [d for d in docs if d["outcome"] == "unrecoverable"]
    aggregates: dict[str, Any] = {
        "cases": len(docs),
        "recovered": len(recovered),
        "unrecoverable": len(unrecoverable),
        "replans_total": sum(
            d["metrics"]["replan_count"] for d in recovered
        ),
        "rejoins_total": sum(
            d["metrics"]["rejoin_count"] for d in recovered
        ),
        "connected_all": all(
            d["metrics"]["connected_all"] for d in recovered
        ),
    }
    return {
        "config": {
            "robot_count": config.robot_count,
            "separation_factor": config.separation_factor,
            "foi_target_points": config.foi_target_points,
            "grid_target": config.grid_target,
            "resolution": config.resolution,
        },
        "matrix": {
            "scenarios": list(scenario_ids),
            "archetypes": list(archetypes),
            "seeds": list(seeds),
        },
        "cases": docs,
        "summary": aggregates,
    }


def summary_bytes(summary: dict[str, Any]) -> bytes:
    """Canonical bytes of a sweep summary (for byte-identity checks)."""
    return dumps_canonical(summary)


def render_chaos(summary: dict[str, Any]) -> str:
    """Human-readable table of a chaos sweep (the CLI's output)."""
    rows = []
    for doc in summary["cases"]:
        if doc["outcome"] == "recovered":
            m = doc["metrics"]
            rows.append([
                doc["scenario_id"],
                doc["archetype"],
                doc["seed"],
                "recovered",
                doc["survivors"],
                m["replan_count"],
                m["rejoin_count"],
                f"{m['extra_distance']:.1f}",
                f"{m['time_to_recover']:.3f}",
                f"{m['stable_link_degradation']:+.3f}",
                "Y" if m["connected_all"] else "N",
            ])
        else:
            rows.append([
                doc["scenario_id"],
                doc["archetype"],
                doc["seed"],
                f"unrecoverable ({doc['stage']})",
                doc["survivors"],
                "-", "-", "-", "-", "-", "-",
            ])
    agg = summary["summary"]
    table = format_table(
        [
            "scenario", "archetype", "seed", "outcome", "survivors",
            "replans", "rejoins", "extra D", "t_recover", "dL", "C",
        ],
        rows,
    )
    footer = (
        f"{agg['recovered']}/{agg['cases']} recovered, "
        f"{agg['unrecoverable']} unrecoverable; "
        f"{agg['replans_total']} replans, {agg['rejoins_total']} rejoins; "
        f"post-replan connectivity "
        f"{'held' if agg['connected_all'] else 'VIOLATED'}"
    )
    return f"{table}\n{footer}"
