"""Content-addressed result cache: in-memory LRU plus optional disk store.

The expensive artifacts of this library - harmonic disk embeddings
above all - are pure functions of their inputs, so they can be cached
under a *content address*: a stable hash of the mesh/boundary inputs
rather than an object identity.  :func:`stable_hash` canonicalises the
supported value shapes (numbers, strings, bytes, numpy arrays, nested
lists/tuples/dicts) into an unambiguous byte stream and digests it with
BLAKE2b, so equal content always collides and different content
practically never does.

:class:`ContentCache` layers an in-memory LRU over an optional
:class:`DiskStore`; entries promoted from disk repopulate the LRU.  Hit
and miss counts land in the ambient :mod:`repro.obs` metrics registry
under ``cache.<namespace>.*`` so experiment runs can report hit rates.

Like the tracer and metrics registry, the cache is *ambient*:
instrumented code calls :func:`get_cache` and callers scope a specific
cache (or disable caching entirely) with :func:`activate_cache` /
:func:`set_cache`.  The process-wide default is a modest in-memory LRU.
"""

from __future__ import annotations

import contextvars
import os
import pickle
import tempfile
import threading
from collections import OrderedDict
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator

import numpy as np

from repro.obs import get_metrics

__all__ = [
    "stable_hash",
    "LRUCache",
    "DiskStore",
    "ContentCache",
    "get_cache",
    "set_cache",
    "activate_cache",
    "disk_backed_cache",
]


# ----------------------------------------------------------------------
# Stable hashing


def _encode(value: Any, out: list[bytes]) -> None:
    """Append an unambiguous byte encoding of ``value`` to ``out``.

    Every branch starts with a distinct tag byte and length-prefixes
    variable-size payloads, so concatenations cannot alias across types
    or container boundaries.
    """
    if value is None:
        out.append(b"N")
    elif isinstance(value, bool):
        out.append(b"B1" if value else b"B0")
    elif isinstance(value, int):
        raw = value.to_bytes((value.bit_length() + 8) // 8 + 1, "big", signed=True)
        out.append(b"I" + len(raw).to_bytes(4, "big") + raw)
    elif isinstance(value, float):
        out.append(b"F" + np.float64(value).tobytes())
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out.append(b"S" + len(raw).to_bytes(8, "big") + raw)
    elif isinstance(value, bytes):
        out.append(b"Y" + len(value).to_bytes(8, "big") + value)
    elif isinstance(value, np.ndarray):
        arr = np.ascontiguousarray(value)
        head = f"A{arr.dtype.str}{arr.shape}".encode("ascii")
        out.append(len(head).to_bytes(4, "big") + head)
        raw = arr.tobytes()
        out.append(len(raw).to_bytes(8, "big") + raw)
    elif isinstance(value, np.generic):
        _encode(value.item(), out)
    elif isinstance(value, (list, tuple)):
        out.append(b"L" + len(value).to_bytes(8, "big"))
        for item in value:
            _encode(item, out)
    elif isinstance(value, dict):
        keys = sorted(value, key=repr)
        out.append(b"D" + len(keys).to_bytes(8, "big"))
        for k in keys:
            _encode(k, out)
            _encode(value[k], out)
    else:
        raise TypeError(
            f"stable_hash does not support {type(value).__name__}; "
            "pass primitives, numpy arrays or nested lists/dicts"
        )


def stable_hash(*parts: Any) -> str:
    """Hex digest content address of the given values.

    Deterministic across processes and platforms: dict keys are sorted,
    numpy arrays hash their dtype, shape and raw bytes, and every value
    is tag- and length-prefixed so distinct structures cannot collide by
    concatenation.
    """
    chunks: list[bytes] = []
    _encode(list(parts), chunks)
    import hashlib

    h = hashlib.blake2b(digest_size=20)
    for chunk in chunks:
        h.update(chunk)
    return h.hexdigest()


# ----------------------------------------------------------------------
# Stores


class LRUCache:
    """Thread-safe in-memory LRU keyed by content address."""

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 1:
            raise ValueError("LRU capacity must be positive")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, Any] = OrderedDict()

    def get(self, key: str) -> Any | None:
        with self._lock:
            if key not in self._entries:
                return None
            self._entries.move_to_end(key)
            return self._entries[key]

    def put(self, key: str, value: Any) -> None:
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries


class DiskStore:
    """Pickle-per-entry store under a cache directory.

    Entries are sharded by the first two hex digits of the key and
    written atomically (temp file + rename), so concurrent writers -
    e.g. several experiment worker processes sharing ``--cache-dir`` -
    can only ever observe complete entries.  A corrupt or unreadable
    entry reads as a miss and is removed.

    Completed writes are fsynced before the rename (pass
    ``fsync=False`` to trade durability for write latency), and
    construction sweeps ``*.tmp`` droppings left behind by writers that
    were killed mid-write; the sweep count lands on the ambient metrics
    registry as ``cache.diskstore.tmp_swept``.
    """

    def __init__(self, directory: str | Path, fsync: bool = True) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync = bool(fsync)
        self.swept_tmp = self.sweep_tmp()

    def _path(self, key: str) -> Path:
        return self.directory / key[:2] / f"{key}.pkl"

    def sweep_tmp(self) -> int:
        """Remove orphaned ``*.tmp`` files; returns how many were swept.

        A writer killed between ``mkstemp`` and ``os.replace`` leaves a
        temp file that no reader will ever resolve - harmless for
        correctness, but it leaks disk forever on a long-lived journal
        or cache directory.
        """
        swept = 0
        for tmp in self.directory.glob("**/*.tmp"):
            try:
                tmp.unlink()
                swept += 1
            except OSError:
                pass
        if swept:
            get_metrics().counter("cache.diskstore.tmp_swept").inc(swept)
        return swept

    def get(self, key: str) -> Any | None:
        path = self._path(key)
        try:
            with open(path, "rb") as fh:
                return pickle.load(fh)
        except FileNotFoundError:
            return None
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ValueError):
            try:
                path.unlink(missing_ok=True)
            except OSError:
                pass
            return None

    def put(self, key: str, value: Any) -> None:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
                if self.fsync:
                    fh.flush()
                    os.fsync(fh.fileno())
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*/*.pkl"))


class ContentCache:
    """Two-tier content-addressed cache with per-namespace hit metrics.

    Parameters
    ----------
    capacity : int
        In-memory LRU entry budget.
    disk : DiskStore, str or Path, optional
        Optional second tier; a path is wrapped in a :class:`DiskStore`.

    Notes
    -----
    Keys should come from :func:`stable_hash`.  ``get``/``put`` take a
    *namespace* ("harmonic.diskmap", ...) that prefixes both the stored
    key and the emitted ``cache.<namespace>.{hits,misses,stores}``
    metrics, so one cache can serve several artifact kinds without key
    collisions between them.
    """

    def __init__(
        self,
        capacity: int = 128,
        disk: DiskStore | str | Path | None = None,
    ) -> None:
        self.memory = LRUCache(capacity)
        if disk is not None and not isinstance(disk, DiskStore):
            disk = DiskStore(disk)
        self.disk = disk

    @staticmethod
    def _qualify(namespace: str, key: str) -> str:
        return f"{namespace}:{key}"

    def get(self, namespace: str, key: str) -> Any | None:
        qkey = self._qualify(namespace, key)
        value = self.memory.get(qkey)
        if value is not None:
            get_metrics().counter(f"cache.{namespace}.hits").inc()
            return value
        if self.disk is not None:
            value = self.disk.get(stable_hash(qkey))
            if value is not None:
                self.memory.put(qkey, value)
                get_metrics().counter(f"cache.{namespace}.hits").inc()
                get_metrics().counter(f"cache.{namespace}.disk_hits").inc()
                return value
        get_metrics().counter(f"cache.{namespace}.misses").inc()
        return None

    def put(self, namespace: str, key: str, value: Any) -> None:
        qkey = self._qualify(namespace, key)
        self.memory.put(qkey, value)
        if self.disk is not None:
            self.disk.put(stable_hash(qkey), value)
        get_metrics().counter(f"cache.{namespace}.stores").inc()

    @staticmethod
    def hit_rate(namespace: str) -> float:
        """Hit rate for a namespace from the ambient metrics registry."""
        m = get_metrics()
        hits = m.counter(f"cache.{namespace}.hits").value
        misses = m.counter(f"cache.{namespace}.misses").value
        total = hits + misses
        return hits / total if total else 0.0


# ----------------------------------------------------------------------
# Ambient cache

_DEFAULT = ContentCache()
_ACTIVE: contextvars.ContextVar[ContentCache | None] = contextvars.ContextVar(
    "repro_active_cache", default=_DEFAULT
)


def get_cache() -> ContentCache | None:
    """The currently active cache (None when caching is disabled)."""
    return _ACTIVE.get()


def set_cache(cache: ContentCache | None) -> None:
    """Install ``cache`` as the ambient cache (None disables caching)."""
    _ACTIVE.set(cache)


@contextmanager
def activate_cache(cache: ContentCache | None) -> Iterator[ContentCache | None]:
    """Scope ``cache`` as the ambient cache for a ``with`` block."""
    token = _ACTIVE.set(cache)
    try:
        yield cache
    finally:
        _ACTIVE.reset(token)


def disk_backed_cache(directory: str | Path, capacity: int = 128) -> ContentCache:
    """A ContentCache persisting to ``directory`` (the ``--cache-dir`` path)."""
    return ContentCache(capacity=capacity, disk=DiskStore(directory))
