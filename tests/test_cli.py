"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_scenario_args(self):
        args = build_parser().parse_args(["scenario", "3", "--separation", "15"])
        assert args.scenario_id == 3
        assert args.separation == 15.0

    def test_scenario_id_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scenario", "9"])

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep", "1"])
        assert args.separations == [10.0, 40.0, 70.0, 100.0]
        assert args.figures is None

    def test_mission_defaults(self):
        args = build_parser().parse_args(["mission"])
        assert args.families is None
        assert args.motions is None
        assert args.epochs == 3
        assert args.seeds == 1
        assert args.method == "a"
        assert args.advance_fraction == 0.5

    def test_mission_args(self):
        args = build_parser().parse_args([
            "mission", "--families", "corridor", "annulus",
            "--motions", "drift", "--seed-list", "3", "7",
            "--epochs", "2", "--workers", "2", "--output", "m.json",
        ])
        assert args.families == ["corridor", "annulus"]
        assert args.motions == ["drift"]
        assert args.seed_list == [3, 7]
        assert args.epochs == 2
        assert args.workers == 2
        assert args.output == "m.json"

    def test_report_missions_flags(self):
        args = build_parser().parse_args([
            "report", "--missions", "--mission-seeds", "2",
            "--mission-epochs", "4",
        ])
        assert args.missions
        assert args.mission_seeds == 2
        assert args.mission_epochs == 4


class TestCommands:
    def test_lemmas_command(self, capsys):
        assert main(["lemmas"]) == 0
        out = capsys.readouterr().out
        assert "Lemma 1" in out
        assert "Lemma 2" in out

    def test_scenario_command(self, capsys):
        code = main(["scenario", "1", "--separation", "12", "--points", "220"])
        assert code == 0
        out = capsys.readouterr().out
        assert "ours (a)" in out
        assert "Hungarian" in out

    def test_sweep_with_figures(self, capsys, tmp_path):
        code = main([
            "sweep", "1",
            "--separations", "12", "30",
            "--figures", str(tmp_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Scenario 1" in out
        assert (tmp_path / "scenario1_distance_ratio.svg").exists()
        assert (tmp_path / "scenario1_stable_links.svg").exists()


class TestVersion:
    def test_version_flag_exits_zero(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro {__version__}"


class TestServiceParsers:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.host == "127.0.0.1"
        assert args.port == 8642
        assert args.capacity == 64
        assert args.job_timeout is None
        assert args.retries == 1
        assert args.ttl == 3600.0
        # serve inherits the common --trace and parallel --workers knobs.
        assert args.trace is None
        assert args.workers is None

    def test_serve_trace_flag(self):
        args = build_parser().parse_args(["serve", "--trace", "out.jsonl"])
        assert args.trace == "out.jsonl"

    def test_submit_args(self):
        args = build_parser().parse_args([
            "submit", "1", "2", "--separation", "12",
            "--methods", "Hungarian", "--priority", "3", "--no-wait",
        ])
        assert args.scenario_ids == [1, 2]
        assert args.separation == 12.0
        assert args.methods == ["Hungarian"]
        assert args.priority == 3
        assert args.no_wait

    def test_submit_scenario_ids_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["submit", "9"])


class _StubService:
    """Captures the kwargs `repro serve` builds its service from."""

    instances = []

    def __init__(self, **kwargs):
        self.kwargs = kwargs
        self.host = kwargs.get("host", "127.0.0.1")
        self.port = 12345
        _StubService.instances.append(self)

    def start(self):
        pass

    def wait(self, timeout=None):
        pass

    def stop(self, drain=True):
        pass


class TestServeCommand:
    @pytest.fixture(autouse=True)
    def stub_service(self, monkeypatch):
        import repro.service

        _StubService.instances.clear()
        monkeypatch.setattr(repro.service, "PlanningService", _StubService)

    def test_serve_announces_endpoint(self, capsys):
        assert main(["serve", "--port", "0", "--capacity", "7"]) == 0
        out = capsys.readouterr().out
        assert "listening on http://127.0.0.1:12345" in out
        (stub,) = _StubService.instances
        assert stub.kwargs["capacity"] == 7
        assert stub.kwargs["tracer"] is None  # no --trace

    def test_serve_trace_streams_server_spans(self, tmp_path, capsys):
        trace = tmp_path / "serve.jsonl"
        assert main(["serve", "--port", "0", "--trace", str(trace)]) == 0
        (stub,) = _StubService.instances
        tracer = stub.kwargs["tracer"]
        assert tracer is not None and tracer.enabled
        # The traced run flushed its metrics snapshot to the sink.
        assert trace.exists()

    def test_serve_workers_set_dispatchers(self):
        assert main(["serve", "--port", "0", "--workers", "3"]) == 0
        (stub,) = _StubService.instances
        assert stub.kwargs["dispatchers"] == 3


class TestSubmitCommand:
    @pytest.fixture(scope="class")
    def service(self):
        from repro.service import PlanningService

        def echo_runner(request):
            return {"echo": request["scenario_ids"]}

        with PlanningService(port=0, dispatchers=1, runner=echo_runner) as svc:
            yield svc

    def test_submit_waits_and_writes_output(self, service, tmp_path, capsys):
        out = tmp_path / "plan.json"
        code = main([
            "submit", "1", "--port", str(service.port), "--output", str(out),
        ])
        assert code == 0
        printed = capsys.readouterr().out
        assert "job " in printed
        assert f"wrote {out}" in printed
        assert out.read_bytes() == b'{"echo":[1]}'

    def test_submit_no_wait_prints_job_id(self, service, capsys):
        code = main(["submit", "2", "--port", str(service.port), "--no-wait"])
        assert code == 0
        assert "job " in capsys.readouterr().out

    def test_submit_failed_job_exits_nonzero(self, capsys):
        from repro.service import PlanningService

        def broken_runner(request):
            raise ValueError("no plan for you")

        with PlanningService(port=0, dispatchers=1, runner=broken_runner,
                             retries=0) as svc:
            code = main(["submit", "1", "--port", str(svc.port)])
        assert code == 1
        assert "no plan for you" in capsys.readouterr().err
