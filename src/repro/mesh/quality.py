"""Mesh-quality measures: angles, aspect ratios, embedding validity.

Used to validate FoI triangulations before harmonic mapping and to
check that disk embeddings remain fold-free (all triangles positively
oriented), which is the discrete statement of the diffeomorphism
property the paper relies on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mesh.trimesh import TriMesh

__all__ = ["triangle_angles", "min_angle", "QualityReport", "quality_report", "orientation_signs"]


def triangle_angles(mesh: TriMesh) -> np.ndarray:
    """Interior angles of every triangle, shape ``(m, 3)``, in radians."""
    a = mesh.vertices[mesh.triangles[:, 0]]
    b = mesh.vertices[mesh.triangles[:, 1]]
    c = mesh.vertices[mesh.triangles[:, 2]]

    def _angle(p, q, r):
        u = q - p
        v = r - p
        cosang = (u * v).sum(axis=1) / np.maximum(
            np.hypot(u[:, 0], u[:, 1]) * np.hypot(v[:, 0], v[:, 1]), 1e-300
        )
        return np.arccos(np.clip(cosang, -1.0, 1.0))

    return np.column_stack([_angle(a, b, c), _angle(b, c, a), _angle(c, a, b)])


def min_angle(mesh: TriMesh) -> float:
    """Smallest interior angle of the mesh, in radians."""
    if mesh.triangle_count == 0:
        return 0.0
    return float(triangle_angles(mesh).min())


def orientation_signs(mesh: TriMesh) -> np.ndarray:
    """Sign of the signed area of each triangle (+1 CCW, -1 CW, 0 flat).

    A valid (fold-free) embedding has all signs positive once triangles
    were CCW in the reference mesh.
    """
    a = mesh.vertices[mesh.triangles[:, 0]]
    b = mesh.vertices[mesh.triangles[:, 1]]
    c = mesh.vertices[mesh.triangles[:, 2]]
    area2 = (b[:, 0] - a[:, 0]) * (c[:, 1] - a[:, 1]) - (b[:, 1] - a[:, 1]) * (
        c[:, 0] - a[:, 0]
    )
    return np.sign(area2).astype(int)


@dataclass(frozen=True)
class QualityReport:
    """Summary statistics of a mesh's triangle quality."""

    triangle_count: int
    min_angle_deg: float
    mean_angle_deg: float
    min_edge: float
    max_edge: float
    mean_edge: float
    total_area: float

    def __str__(self) -> str:
        return (
            f"{self.triangle_count} triangles, angles >= "
            f"{self.min_angle_deg:.1f} deg, edges "
            f"[{self.min_edge:.2f}, {self.max_edge:.2f}] "
            f"(mean {self.mean_edge:.2f}), area {self.total_area:.1f}"
        )


def quality_report(mesh: TriMesh) -> QualityReport:
    """Compute a :class:`QualityReport` for ``mesh``."""
    angles = triangle_angles(mesh)
    lengths = mesh.edge_lengths()
    return QualityReport(
        triangle_count=mesh.triangle_count,
        min_angle_deg=float(np.degrees(angles.min())) if angles.size else 0.0,
        mean_angle_deg=float(np.degrees(angles.mean())) if angles.size else 0.0,
        min_edge=float(lengths.min()) if lengths.size else 0.0,
        max_edge=float(lengths.max()) if lengths.size else 0.0,
        mean_edge=float(lengths.mean()) if lengths.size else 0.0,
        total_area=float(mesh.triangle_areas().sum()),
    )
