"""Generic graph utilities: union-find, BFS layers, path existence.

Small, dependency-free building blocks used by connectivity repair,
triangulation extraction, and the distributed protocols' centralized
reference implementations.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, Iterable, Mapping, Sequence

import numpy as np

__all__ = ["UnionFind", "bfs_hops", "connected_components", "adjacency_from_edges"]


class UnionFind:
    """Disjoint-set forest with path compression and union by size."""

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError("UnionFind size must be non-negative")
        self._parent = list(range(n))
        self._size = [1] * n
        self.component_count = n

    def find(self, x: int) -> int:
        """Representative of ``x``'s component."""
        root = x
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[x] != root:
            self._parent[x], x = root, self._parent[x]
        return root

    def union(self, a: int, b: int) -> bool:
        """Merge the components of ``a`` and ``b``; True if they differed."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        self.component_count -= 1
        return True

    def connected(self, a: int, b: int) -> bool:
        return self.find(a) == self.find(b)

    def component_sizes(self) -> list[int]:
        """Sizes of all components, largest first."""
        roots: dict[int, int] = {}
        for x in range(len(self._parent)):
            r = self.find(x)
            roots[r] = roots.get(r, 0) + 1
        return sorted(roots.values(), reverse=True)


def adjacency_from_edges(n: int, edges: Iterable[Sequence[int]]) -> list[list[int]]:
    """Sorted neighbour lists for an undirected edge list over ``n`` nodes."""
    adj: list[set[int]] = [set() for _ in range(n)]
    for u, v in edges:
        u, v = int(u), int(v)
        if u == v:
            continue
        adj[u].add(v)
        adj[v].add(u)
    return [sorted(s) for s in adj]


def bfs_hops(adjacency: Sequence[Sequence[int]], sources: Iterable[int]) -> np.ndarray:
    """Hop distance from the nearest source to every node (-1 if unreachable).

    This is the centralized equivalent of the paper's boundary-initiated
    flooding used to detect isolated subgroups (Sec. III-D1).
    """
    n = len(adjacency)
    dist = -np.ones(n, dtype=int)
    dq: deque[int] = deque()
    for s in sources:
        s = int(s)
        if dist[s] != 0:
            dist[s] = 0
            dq.append(s)
    while dq:
        v = dq.popleft()
        for w in adjacency[v]:
            if dist[w] < 0:
                dist[w] = dist[v] + 1
                dq.append(w)
    return dist


def connected_components(adjacency: Sequence[Sequence[int]]) -> list[list[int]]:
    """Connected components as sorted node lists, largest first."""
    n = len(adjacency)
    seen = [False] * n
    comps: list[list[int]] = []
    for start in range(n):
        if seen[start]:
            continue
        stack = [start]
        seen[start] = True
        comp = [start]
        while stack:
            v = stack.pop()
            for w in adjacency[v]:
                if not seen[w]:
                    seen[w] = True
                    comp.append(w)
                    stack.append(w)
        comps.append(sorted(comp))
    comps.sort(key=len, reverse=True)
    return comps
