"""The individual mobile robot model (paper Sec. II).

Each robot is identical: a unique ID, a GPS position, a disk
communication range ``r_c`` and a disk sensing range ``r_s`` with the
paper's standing assumption ``r_c >= sqrt(3) * r_s`` (so the triangular
lattice that is optimal for coverage is automatically connected with
six neighbours per robot).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.errors import GeometryError
from repro.geometry.vec import as_point

__all__ = ["Robot", "RadioSpec", "SQRT3"]

SQRT3 = float(np.sqrt(3.0))


@dataclass(frozen=True)
class RadioSpec:
    """Communication/sensing disk radii shared by every robot in a swarm.

    Raises
    ------
    GeometryError
        If either range is non-positive or ``comm_range <
        sqrt(3) * sensing_range`` (violating the paper's assumption
        that full coverage implies connectivity).
    """

    comm_range: float
    sensing_range: float

    def __post_init__(self) -> None:
        if self.comm_range <= 0 or self.sensing_range <= 0:
            raise GeometryError("ranges must be positive")
        if self.comm_range < SQRT3 * self.sensing_range - 1e-9:
            raise GeometryError(
                f"paper assumes r_c >= sqrt(3) r_s; got r_c={self.comm_range}, "
                f"r_s={self.sensing_range}"
            )

    @classmethod
    def from_comm_range(cls, comm_range: float) -> "RadioSpec":
        """Spec with the largest sensing range the assumption allows."""
        return cls(comm_range=comm_range, sensing_range=comm_range / SQRT3)

    @property
    def lattice_spacing(self) -> float:
        """Spacing of the coverage-optimal triangular lattice, sqrt(3) r_s."""
        return SQRT3 * self.sensing_range


@dataclass(frozen=True)
class Robot:
    """One mobile robot: unique ID, position, and shared radio spec."""

    robot_id: int
    position: np.ndarray
    radio: RadioSpec

    def __post_init__(self) -> None:
        object.__setattr__(self, "position", as_point(self.position))
        if self.robot_id < 0:
            raise GeometryError("robot IDs must be non-negative")

    def moved_to(self, new_position) -> "Robot":
        """A copy of this robot at ``new_position``."""
        return replace(self, position=as_point(new_position))

    def distance_to(self, other: "Robot") -> float:
        d = self.position - other.position
        return float(np.hypot(d[0], d[1]))

    def can_communicate_with(self, other: "Robot") -> bool:
        """Disk-model connectivity: within ``r_c`` and not the same robot."""
        return self.robot_id != other.robot_id and self.distance_to(other) <= min(
            self.radio.comm_range, other.radio.comm_range
        )
