"""Write-ahead job journal: the durability layer under the job queues.

Every job state transition the service accepts is appended to an
append-only, fsynced journal *before* the caller is acknowledged, so a
``kill -9`` can lose at most the one record that was mid-write - and a
torn trailing record is detected and skipped on replay, never
misinterpreted.  Records are versioned canonical-JSON lines authored by
:func:`repro.io.journal_record`, one per line, grouped into numbered
segment files that rotate at a size threshold and are compacted into a
single live-state snapshot on recovery.

Large ``done`` payloads do not travel through the log: the result bytes
are written to a content-named side file (atomic rename + fsync) first,
and the journal records only the job id and a SHA-256 digest.  Replay
verifies the digest; a missing or torn payload simply downgrades the
job back to ``queued`` - the content-address dedup of
:class:`repro.service.JobQueue` makes re-execution idempotent, which is
what turns this journal's at-least-once replay into exactly-once
*results*.

The journal is shared by all shard queues of one
:class:`~repro.service.PlanningService` process; appends are serialised
under an internal lock, and a pid lock file refuses to open a journal
directory that another live process is writing.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

from repro.errors import JournalError
from repro.io import (
    check_journal_version,
    dumps_canonical,
    journal_record,
)
from repro.obs import get_metrics

__all__ = ["JobJournal", "JournalReplay", "replay_records"]

_SEGMENT_PREFIX = "journal-"
_SEGMENT_SUFFIX = ".wal"
_LOCK_FILE = "journal.lock"
_RESULTS_DIR = "results"

#: record types that describe a job state transition (fold order matters).
_TRANSITIONS = (
    "submitted",
    "claimed",
    "released",
    "done",
    "failed",
    "cancelled",
    "evicted",
    "event",
    "job",
)


@dataclass
class JournalReplay:
    """Folded outcome of replaying every surviving journal record.

    ``jobs`` maps job id to its folded state dict (``state`` is one of
    the queue states plus the replay-only markers described in
    :func:`replay_records`); ``evicted`` maps evicted job ids to their
    wall-clock eviction time for the ``410 expired`` contract.
    """

    jobs: dict[str, dict[str, Any]] = field(default_factory=dict)
    evicted: dict[str, float] = field(default_factory=dict)
    records: int = 0
    torn: int = 0
    segments: int = 0


def replay_records(records: Iterator[dict[str, Any]]) -> JournalReplay:
    """Fold journal records into final per-job state.

    The fold mirrors the queue's transition rules: ``submitted`` creates
    or revives a job (resetting its event log, exactly as a live revive
    does), ``claimed`` marks it running, ``done``/``failed``/
    ``cancelled`` terminate it, ``released`` parks it back in the queue
    (graceful drain), ``evicted`` forgets it but remembers *when*, and
    ``job`` is a whole-state snapshot written by compaction.
    """
    out = JournalReplay()
    for record in records:
        out.records += 1
        rtype = record.get("type")
        job_id = record.get("job_id")
        if rtype == "evicted":
            if job_id is not None:
                out.jobs.pop(job_id, None)
                out.evicted[job_id] = float(record.get("at", 0.0))
            continue
        if job_id is None:
            continue
        if rtype == "submitted":
            out.jobs[job_id] = {
                "job_id": job_id,
                "request": record.get("request"),
                "priority": int(record.get("priority", 0)),
                "provenance": str(record.get("provenance", "new")),
                "state": "queued",
                "interrupted": False,
                "events": [],
                "error": None,
                "digest": None,
                "submissions": int(record.get("submissions", 1)),
            }
            out.evicted.pop(job_id, None)
            continue
        job = out.jobs.get(job_id)
        if rtype == "job":
            out.jobs[job_id] = {
                "job_id": job_id,
                "request": record.get("request"),
                "priority": int(record.get("priority", 0)),
                "provenance": str(record.get("provenance", "new")),
                "state": str(record.get("state", "queued")),
                "interrupted": bool(record.get("interrupted", False)),
                "events": list(record.get("events", [])),
                "error": record.get("error"),
                "digest": record.get("digest"),
                "submissions": int(record.get("submissions", 1)),
            }
        elif job is None:
            # Transition for a job whose ``submitted`` record was torn
            # away or compacted out after eviction: nothing to fold onto.
            continue
        elif rtype == "event":
            job["events"].append(record.get("event", {}))
        elif rtype == "claimed":
            job["state"] = "running"
        elif rtype == "released":
            job["state"] = "queued"
            job["interrupted"] = True
        elif rtype == "done":
            job["state"] = "done"
            job["digest"] = record.get("digest")
        elif rtype == "failed":
            job["state"] = "failed"
            job["error"] = record.get("error")
        elif rtype == "cancelled":
            job["state"] = "cancelled"
            job["error"] = record.get("error")
    return out


class JobJournal:
    """Append-only segmented journal under one directory.

    Layout::

        <directory>/journal.lock        pid of the live writer
        <directory>/journal-00000001.wal
        <directory>/journal-00000002.wal   (rotation)
        <directory>/results/<job_id>.json  fsynced result payloads
        <directory>/missions/<job_id>/     mission checkpoints (owned by
                                           repro.missions, not this class)

    Appends never touch a pre-existing segment: on open, writing starts
    in a *fresh* segment numbered after the highest survivor, so a torn
    tail from a previous crash is quarantined where replay can skip it.
    """

    def __init__(
        self,
        directory: str | Path,
        segment_max_bytes: int = 4 * 1024 * 1024,
        fsync: bool = True,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.segment_max_bytes = int(segment_max_bytes)
        self.fsync = bool(fsync)
        self._lock = threading.Lock()
        self._fh: Any = None
        self._segment_index = 0
        self._segment_bytes = 0
        self._closed = False
        self._torn = 0
        self._acquire_lockfile()
        (self.directory / _RESULTS_DIR).mkdir(exist_ok=True)

    # -- lock file ------------------------------------------------------

    def _acquire_lockfile(self) -> None:
        lock_path = self.directory / _LOCK_FILE
        my_pid = os.getpid()
        try:
            fd = os.open(lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            try:
                owner = int(lock_path.read_text().strip() or "0")
            except (OSError, ValueError):
                owner = 0
            if owner and owner != my_pid and _pid_alive(owner):
                raise JournalError(
                    f"journal directory {self.directory} is locked by live "
                    f"process {owner}; two writers would corrupt the log"
                ) from None
            # Stale lock from a killed process: steal it.
            lock_path.write_text(f"{my_pid}\n")
            return
        with os.fdopen(fd, "w") as fh:
            fh.write(f"{my_pid}\n")

    def _release_lockfile(self) -> None:
        try:
            (self.directory / _LOCK_FILE).unlink(missing_ok=True)
        except OSError:
            pass

    # -- segments -------------------------------------------------------

    def _segment_paths(self) -> list[Path]:
        return sorted(
            p
            for p in self.directory.glob(f"{_SEGMENT_PREFIX}*{_SEGMENT_SUFFIX}")
            if p.is_file()
        )

    @staticmethod
    def _segment_number(path: Path) -> int:
        stem = path.name[len(_SEGMENT_PREFIX):-len(_SEGMENT_SUFFIX)]
        try:
            return int(stem)
        except ValueError:
            return 0

    def _open_fresh_segment(self) -> None:
        existing = self._segment_paths()
        top = max((self._segment_number(p) for p in existing), default=0)
        self._segment_index = max(top, self._segment_index) + 1
        path = self.directory / (
            f"{_SEGMENT_PREFIX}{self._segment_index:08d}{_SEGMENT_SUFFIX}"
        )
        self._fh = open(path, "ab")
        self._segment_bytes = 0
        get_metrics().counter("service.journal.segments_opened").inc()

    @property
    def segment_count(self) -> int:
        return len(self._segment_paths())

    # -- append path ----------------------------------------------------

    def append(self, rtype: str, **fields: Any) -> None:
        """Durably append one versioned record.

        The record is on disk (written + fsynced) when this returns, so
        callers may acknowledge the transition to clients.  Raises
        :class:`JournalError` after :meth:`close`.
        """
        line = dumps_canonical(journal_record(rtype, **fields)) + b"\n"
        with self._lock:
            if self._closed:
                raise JournalError("journal is closed")
            if self._fh is None or self._segment_bytes >= self.segment_max_bytes:
                if self._fh is not None:
                    self._fh.close()
                self._open_fresh_segment()
            self._fh.write(line)
            self._segment_bytes += len(line)
            # Always flush so the record is visible to readers (and
            # survives a graceful exit) even in no-fsync mode; fsync is
            # the extra step that survives kill -9 / power loss.
            self._fh.flush()
            if self.fsync:
                os.fsync(self._fh.fileno())
        metrics = get_metrics()
        metrics.counter("service.journal.appends").inc()
        metrics.counter(f"service.journal.appends.{rtype}").inc()

    # -- result side files ---------------------------------------------

    def _result_path(self, job_id: str) -> Path:
        return self.directory / _RESULTS_DIR / f"{job_id}.json"

    def put_result(self, job_id: str, payload: bytes) -> str:
        """Durably store a result payload; returns its hex SHA-256.

        Called *before* the ``done`` record is journalled, so a ``done``
        that survived a crash always has its payload (or the digest
        check fails and replay re-queues the job).
        """
        path = self._result_path(job_id)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(payload)
                if self.fsync:
                    fh.flush()
                    os.fsync(fh.fileno())
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return hashlib.sha256(payload).hexdigest()

    def get_result(self, job_id: str, digest: str | None) -> bytes | None:
        """Load a result payload, verifying its journalled digest.

        Returns ``None`` (never bad bytes) when the side file is
        missing, unreadable, or does not match the digest.
        """
        try:
            payload = self._result_path(job_id).read_bytes()
        except OSError:
            return None
        if digest is not None and hashlib.sha256(payload).hexdigest() != digest:
            return None
        return payload

    def drop_result(self, job_id: str) -> None:
        try:
            self._result_path(job_id).unlink(missing_ok=True)
        except OSError:
            pass

    # -- replay + compaction --------------------------------------------

    def _iter_segment(self, path: Path) -> Iterator[dict[str, Any]]:
        try:
            raw = path.read_bytes()
        except OSError:
            return
        complete = raw.endswith(b"\n")
        lines = raw.split(b"\n")
        if lines and lines[-1] == b"":
            lines.pop()
        for index, line in enumerate(lines):
            last = index == len(lines) - 1
            try:
                record = json.loads(line.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                # A torn or corrupt line.  A torn *tail* is the expected
                # kill -9 signature; corruption mid-segment means the
                # rest of the segment cannot be trusted either.
                self._torn += 1
                return
            if last and not complete:
                # Fully parseable JSON but no trailing newline: the
                # write may still have been truncated inside an escape-
                # free suffix; accept it only if it round-trips.
                if dumps_canonical(record) != line:
                    self._torn += 1
                    return
            check_journal_version(record, source=path)
            yield record

    def replay(self) -> JournalReplay:
        """Read every surviving record and fold it into live state.

        Torn trailing records are skipped and counted (they were never
        acknowledged, so dropping them is correct).  Raises
        :class:`JournalError` on an unsupported record version.
        """
        self._torn = 0
        segments = self._segment_paths()

        def _all() -> Iterator[dict[str, Any]]:
            for path in segments:
                yield from self._iter_segment(path)

        out = replay_records(_all())
        out.torn = self._torn
        out.segments = len(segments)
        metrics = get_metrics()
        metrics.counter("service.journal.replayed_records").inc(out.records)
        if out.torn:
            metrics.counter("service.journal.torn_records").inc(out.torn)
        return out

    def compact(self, replay: JournalReplay) -> None:
        """Rewrite the folded state as one snapshot segment.

        Writes every live job as a ``job`` record plus the eviction map
        into a fresh segment, fsyncs it, then deletes all older
        segments.  Run immediately after :meth:`replay` on startup -
        before concurrent appends exist - so the journal does not grow
        without bound across restarts.
        """
        with self._lock:
            if self._closed:
                raise JournalError("journal is closed")
            if self._fh is not None:
                self._fh.close()
                self._fh = None
            old = self._segment_paths()
            self._open_fresh_segment()
            for job in replay.jobs.values():
                record = journal_record(
                    "job",
                    job_id=job["job_id"],
                    request=job["request"],
                    priority=job["priority"],
                    provenance=job["provenance"],
                    state=job["state"],
                    interrupted=job["interrupted"],
                    events=job["events"],
                    error=job["error"],
                    digest=job["digest"],
                    submissions=job["submissions"],
                )
                line = dumps_canonical(record) + b"\n"
                self._fh.write(line)
                self._segment_bytes += len(line)
            for job_id, at in sorted(replay.evicted.items()):
                line = dumps_canonical(
                    journal_record("evicted", job_id=job_id, at=at)
                ) + b"\n"
                self._fh.write(line)
                self._segment_bytes += len(line)
            self._fh.flush()
            if self.fsync:
                os.fsync(self._fh.fileno())
            for path in old:
                try:
                    path.unlink()
                except OSError:
                    pass
        get_metrics().counter("service.journal.compactions").inc()

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if self._fh is not None:
                self._fh.close()
                self._fh = None
        self._release_lockfile()

    def __enter__(self) -> "JobJournal":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    except OSError:
        return False
    return True


def wall_clock() -> float:
    """Wall-clock seconds since the epoch (journal eviction timestamps).

    Isolated here so tests can monkeypatch journal time without touching
    the queue's monotonic clock.
    """
    return time.time()
