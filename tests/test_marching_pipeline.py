"""Tests for the Fig. 2 pipeline runner and its stage artifacts."""

import numpy as np
import pytest

from repro.coverage import LloydConfig
from repro.foi import FieldOfInterest, ellipse_polygon
from repro.marching import MarchingConfig, run_pipeline
from repro.robots import RadioSpec, Swarm

FAST = MarchingConfig(
    foi_target_points=220, lloyd=LloydConfig(grid_target=800, max_iterations=25)
)


@pytest.fixture(scope="module")
def stages():
    radio = RadioSpec.from_comm_range(80.0)
    m1 = FieldOfInterest(
        ellipse_polygon(1.0, 1.0, samples=40).scaled_to_area(150_000.0), name="m1"
    )
    swarm = Swarm.deploy_lattice(m1, 49, radio)
    m2 = FieldOfInterest(
        ellipse_polygon(1.3, 0.8, samples=40).scaled_to_area(140_000.0), name="m2"
    ).translated((1200.0, 0.0))
    return run_pipeline(swarm, m2, config=FAST)


class TestStages:
    def test_panel_a_graph(self, stages):
        assert stages.m1_graph.node_count == 49
        assert stages.m1_graph.is_connected()

    def test_panel_b_triangulation(self, stages):
        assert stages.t_mesh.vertex_count == 49
        assert stages.t_mesh.is_topological_disk()
        assert len(stages.t_vertex_map) == 49

    def test_panel_c_disk_map(self, stages):
        assert stages.disk_map_t.is_embedding()
        assert stages.disk_map_t.max_radius() == pytest.approx(1.0)

    def test_panel_d_foi_mesh(self, stages):
        assert stages.foi_mesh.mesh.is_connected()
        assert stages.disk_map_m2.is_embedding()

    def test_panels_e_f_positions(self, stages):
        m2 = stages.foi_mesh.foi
        r = stages.result
        assert m2.contains(r.final_positions).all()
        # March targets land inside or at worst on the target boundary.
        near = m2.contains(r.march_targets)
        assert near.mean() > 0.9

    def test_preserved_mask_shape(self, stages):
        mask = stages.preserved_link_mask()
        assert mask.shape == (stages.result.links.link_count,)
        assert mask.any()

    def test_new_links_disjoint_from_initial(self, stages):
        new = stages.new_links()
        initial = {tuple(e) for e in stages.result.links.links.tolist()}
        for e in new.tolist():
            assert tuple(e) not in initial
