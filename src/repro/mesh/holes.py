"""Virtual-vertex hole filling (paper Sec. III-D3).

Harmonic mapping to a disk requires a topological disk, but FoIs (and
swarm triangulations over them) can have holes.  The paper's fix: "add
a virtual vertex for each hole and fill all holes with virtual
triangulations" - a triangle fan from the hole's centroid to its
boundary loop.  After the map is computed, virtual vertices and their
fan triangles are discarded.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import MeshError
from repro.geometry.polygon import signed_area
from repro.mesh.trimesh import TriMesh

__all__ = ["FilledMesh", "fill_holes"]


@dataclass(frozen=True)
class FilledMesh:
    """A hole-free mesh derived from a mesh with hole loops.

    Attributes
    ----------
    mesh : TriMesh
        The filled mesh; vertices ``0 .. original_vertex_count - 1``
        coincide with the source mesh's vertices, followed by one
        virtual vertex per hole.
    original_vertex_count : int
        Number of non-virtual vertices.
    virtual_vertices : tuple[int, ...]
        Indices (into ``mesh.vertices``) of the added hole centroids.
    hole_loops : tuple[tuple[int, ...], ...]
        The source hole loops, for bookkeeping.
    """

    mesh: TriMesh
    original_vertex_count: int
    virtual_vertices: tuple[int, ...]
    hole_loops: tuple[tuple[int, ...], ...]

    @property
    def is_virtual(self) -> np.ndarray:
        """Boolean mask over the filled mesh's vertices."""
        mask = np.zeros(self.mesh.vertex_count, dtype=bool)
        mask[list(self.virtual_vertices)] = True
        return mask

    def strip_virtual(self, vertices: np.ndarray) -> np.ndarray:
        """Drop virtual-vertex rows from a per-vertex array."""
        return np.asarray(vertices)[: self.original_vertex_count]


def fill_holes(mesh: TriMesh) -> FilledMesh:
    """Fill every hole loop of ``mesh`` with a virtual-vertex fan.

    The virtual vertex is placed at the mean of the hole-loop vertices
    ("the position of a virtual vertex ... is computed as average of
    the positions of boundary vertices along the hole").

    Returns
    -------
    FilledMesh
        With ``mesh`` unchanged when there are no holes (zero virtual
        vertices).

    Raises
    ------
    MeshError
        If the filled mesh fails to become a topological disk.
    """
    holes = mesh.hole_loops
    if not holes:
        return FilledMesh(
            mesh=mesh,
            original_vertex_count=mesh.vertex_count,
            virtual_vertices=(),
            hole_loops=(),
        )
    vertices = [mesh.vertices]
    triangles = [mesh.triangles]
    virtual: list[int] = []
    next_idx = mesh.vertex_count
    for loop in holes:
        loop_arr = np.asarray(loop, dtype=int)
        center = mesh.vertices[loop_arr].mean(axis=0)
        vertices.append(center[None, :])
        # Orient the fan so its triangles are CCW: the hole loop bounds
        # the fan, so walk it in the orientation that encloses the
        # centroid positively.
        if signed_area(mesh.vertices[loop_arr]) < 0:
            loop_arr = loop_arr[::-1]
        fans = np.array(
            [
                [loop_arr[i], loop_arr[(i + 1) % len(loop_arr)], next_idx]
                for i in range(len(loop_arr))
            ],
            dtype=int,
        )
        triangles.append(fans)
        virtual.append(next_idx)
        next_idx += 1
    filled = TriMesh(np.vstack(vertices), np.vstack(triangles))
    if len(filled.boundary_loops) != 1:
        raise MeshError(
            f"hole filling left {len(filled.boundary_loops)} boundary loops"
        )
    return FilledMesh(
        mesh=filled,
        original_vertex_count=mesh.vertex_count,
        virtual_vertices=tuple(virtual),
        hole_loops=tuple(tuple(int(v) for v in lp) for lp in holes),
    )
