"""Distributed harmonic iteration (paper Sec. III-B).

"Inner vertices ... initiate their positions at the center of the unit
disk.  Then at each step, an inner vertex computes its position as the
average of the positions of its neighboring vertices.  Note that only
inner vertices update their positions."

Each round every node broadcasts its current disk position and interior
nodes replace theirs by the received average - a Jacobi sweep executed
purely through messages.  Run for a fixed number of rounds, the result
matches the centralized :func:`repro.harmonic.solvers.solve_iterative`
sweep-for-sweep, which is exactly what the equivalence test asserts.
"""

from __future__ import annotations

import numpy as np

from repro.distributed.runtime import Node, NodeApi, SyncNetwork

__all__ = ["AveragingNode", "run_distributed_harmonic"]


class AveragingNode(Node):
    """One vertex of the mesh being embedded.

    Parameters
    ----------
    node_id : int
    pinned_position : (2,) array or None
        Boundary vertices pass their circle position; interior vertices
        pass None and start at the disk centre.
    rounds : int
        Number of averaging sweeps to execute.
    """

    def __init__(self, node_id: int, pinned_position, rounds: int) -> None:
        super().__init__(node_id)
        self.pinned = pinned_position is not None
        self.position = (
            np.asarray(pinned_position, dtype=float) if self.pinned else np.zeros(2)
        )
        self.rounds = int(rounds)
        self._done = 0

    def _payload(self) -> tuple[float, float]:
        return (float(self.position[0]), float(self.position[1]))

    def on_start(self, api: NodeApi) -> None:
        if self.rounds <= 0:
            self.halt()
            return
        api.broadcast("pos", self._payload())

    def on_round(self, api: NodeApi, inbox) -> None:
        positions = [msg.payload for msg in inbox if msg.kind == "pos"]
        if not self.pinned and positions:
            self.position = np.mean(np.asarray(positions, dtype=float), axis=0)
        self._done += 1
        if self._done >= self.rounds:
            self.halt()
            return
        api.broadcast("pos", self._payload())


def run_distributed_harmonic(
    adjacency,
    boundary_positions: dict[int, np.ndarray],
    rounds: int,
) -> np.ndarray:
    """Run ``rounds`` Jacobi sweeps of the averaging protocol.

    Parameters
    ----------
    adjacency : sequence of sequences
        Mesh vertex adjacency.
    boundary_positions : dict vertex -> (2,) array
        Pinned circle positions.
    rounds : int
        Sweeps to execute (a real deployment would wrap this in a
        termination-detection protocol; the fixed count keeps the
        simulation deterministic).

    Returns
    -------
    (n, 2) ndarray of final positions.
    """
    n = len(adjacency)
    nodes = [AveragingNode(i, boundary_positions.get(i), rounds) for i in range(n)]
    net = SyncNetwork(nodes, adjacency)
    net.run(max_rounds=rounds + 4)
    return np.array([node.position for node in nodes])
