"""Coverage quality measures.

Used by tests and the experiment harness to verify that the pipeline's
final deployments actually cover the target FoI, and by the Fig. 6
experiment to show the density-aware deployment concentrating robots
near the hot region.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CoverageError
from repro.foi.region import FieldOfInterest
from repro.geometry.vec import as_points

__all__ = [
    "coverage_fraction",
    "density_concentration",
    "kershner_bound",
    "nearest_robot_distances",
]


def kershner_bound(area: float, sensing_range: float) -> int:
    """Minimum disks of radius ``sensing_range`` covering ``area``.

    Kershner's theorem (the paper's ref. [11]): covering a bounded
    region of area ``A`` with disks of radius ``r`` needs at least
    ``2A / (3 * sqrt(3) * r^2)`` disks, attained asymptotically by the
    triangular lattice.  Scenario builders use this to check a swarm
    can actually cover its FoI.
    """
    if area <= 0 or sensing_range <= 0:
        raise CoverageError("area and sensing range must be positive")
    return int(np.ceil(2.0 * area / (3.0 * np.sqrt(3.0) * sensing_range**2)))


def coverage_fraction(
    foi: FieldOfInterest,
    positions,
    sensing_range: float,
    grid_target: int = 4000,
) -> float:
    """Fraction of the FoI's free area within sensing range of a robot.

    Monte-Carlo-free: evaluated on a deterministic grid of roughly
    ``grid_target`` points.
    """
    if sensing_range <= 0:
        raise CoverageError("sensing range must be positive")
    pts = as_points(positions)
    spacing = float(np.sqrt(foi.area / grid_target))
    grid = foi.grid_points(spacing)
    if len(grid) == 0:
        raise CoverageError("FoI grid came out empty; lower grid_target")
    diff = grid[:, None, :] - pts[None, :, :]
    d2 = diff[..., 0] ** 2 + diff[..., 1] ** 2
    covered = d2.min(axis=1) <= sensing_range * sensing_range
    return float(covered.mean())


def nearest_robot_distances(foi: FieldOfInterest, positions, grid_target: int = 4000) -> np.ndarray:
    """Distance from each FoI grid point to its nearest robot."""
    pts = as_points(positions)
    spacing = float(np.sqrt(foi.area / grid_target))
    grid = foi.grid_points(spacing)
    diff = grid[:, None, :] - pts[None, :, :]
    d2 = diff[..., 0] ** 2 + diff[..., 1] ** 2
    return np.sqrt(d2.min(axis=1))


def density_concentration(
    positions, hot_region_test, total_test=None
) -> float:
    """Fraction of robots inside a "hot" sub-region.

    Parameters
    ----------
    positions : (n, 2) array-like
    hot_region_test : callable((n, 2) array) -> (n,) bool
        Membership test of the hot region (e.g. within distance ``d``
        of a hole).
    total_test : optional callable
        Restrict the denominator to robots passing this test.
    """
    pts = as_points(positions)
    if total_test is not None:
        pts = pts[np.asarray(total_test(pts), dtype=bool)]
    if len(pts) == 0:
        raise CoverageError("no robots to measure concentration over")
    hot = np.asarray(hot_region_test(pts), dtype=bool)
    return float(hot.mean())
