"""Tests for transition time-series traces."""

import numpy as np
import pytest

from repro.experiments import record_trace, render_trace_chart
from repro.network import LinkTable
from repro.robots import straight_transition


def chain(n, spacing=1.0):
    return np.column_stack([np.arange(n) * spacing, np.zeros(n)])


class TestRecordTrace:
    def test_static_swarm_flat_trace(self):
        pos = chain(5)
        links = LinkTable.from_positions(pos, 1.5)
        traj = straight_transition(pos, pos)
        trace = record_trace(traj, links, resolution=8)
        assert trace.initial_link_count == 4
        assert (trace.initial_links_alive == 4).all()
        assert (trace.stable_links_running == 4).all()
        assert trace.final_stable_ratio == 1.0
        assert (trace.isolated == 0).all()

    def test_running_stable_non_increasing(self, rng):
        pos = rng.uniform(0, 5, (10, 2))
        target = pos + rng.normal(0, 3, (10, 2))
        links = LinkTable.from_positions(pos, 2.5)
        traj = straight_transition(pos, target)
        trace = record_trace(traj, links, resolution=16)
        assert (np.diff(trace.stable_links_running) <= 0).all()
        # Running stable never exceeds the instantaneous alive count.
        assert (trace.stable_links_running <= trace.initial_links_alive).all()

    def test_final_ratio_matches_metric(self, rng):
        from repro.metrics import stable_link_ratio

        pos = rng.uniform(0, 5, (8, 2))
        target = pos + rng.normal(0, 2, (8, 2))
        links = LinkTable.from_positions(pos, 2.5)
        traj = straight_transition(pos, target)
        trace = record_trace(traj, links, resolution=16)
        assert trace.final_stable_ratio == pytest.approx(
            stable_link_ratio(links, traj, resolution=16)
        )

    def test_compression_detected(self):
        """Robots converging to a point mid-flight inflate total links."""
        pos = chain(6, spacing=2.0)
        target = pos[::-1].copy()  # swap ends: everyone crosses the middle
        links = LinkTable.from_positions(pos, 2.5)
        traj = straight_transition(pos, target)
        trace = record_trace(traj, links, resolution=32)
        assert trace.peak_compression > 1.0

    def test_isolation_with_anchors(self):
        pos = chain(4)
        target = pos.copy()
        target[3] += [30.0, 0.0]
        links = LinkTable.from_positions(pos, 1.5)
        traj = straight_transition(pos, target)
        trace = record_trace(traj, links, boundary_anchors=[0], resolution=16)
        assert trace.isolated[-1] == 1
        assert trace.isolated[0] == 0


class TestRenderTraceChart:
    def test_chart_written(self, tmp_path, rng):
        pos = rng.uniform(0, 5, (8, 2))
        links = LinkTable.from_positions(pos, 2.5)
        traj = straight_transition(pos, pos + [5.0, 0.0])
        trace = record_trace(traj, links, resolution=8)
        path = render_trace_chart(trace, tmp_path / "trace.svg", title="T")
        assert path.exists()
        text = path.read_text()
        assert "initial links alive" in text
        assert "stable so far" in text
