"""Mid-transition replanning after robot failures.

The paper motivates ANR systems as "more reliable since the failure of
an individual robot can be recovered by its peers", and the global-
connectivity requirement exists precisely so the survivors can
coordinate a new plan mid-march ("the ANRs must cooperatively determine
how to adapt to the event.  If an ANR is isolated at this time, it may
be excluded from the new plan and thus become permanently lost").

:func:`replan_after_failure` implements that recovery: freeze the
transition at the failure instant, drop the failed robots, verify the
survivors still form a connected network (they do whenever the original
plan's Definition-2 guarantee held and the failures don't cut the
graph), and plan a fresh marching transition for the survivors from
their current positions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.coverage.density import DensityFunction
from repro.errors import PlanningError
from repro.foi.region import FieldOfInterest
from repro.marching.planner import MarchingConfig, MarchingPlanner
from repro.marching.result import MarchingResult
from repro.network.udg import UnitDiskGraph
from repro.robots.swarm import Swarm

__all__ = ["FailureEvent", "ReplanOutcome", "replan_after_failure"]


@dataclass(frozen=True)
class FailureEvent:
    """Robots failing at one instant of a transition.

    Attributes
    ----------
    time : float
        Failure instant within the original trajectory's time span.
    failed : tuple[int, ...]
        Robot indices (original numbering) that died.
    """

    time: float
    failed: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(set(self.failed)) != len(self.failed):
            raise PlanningError("duplicate robot ids in failure event")


@dataclass(frozen=True)
class ReplanOutcome:
    """Result of a mid-transition recovery.

    Attributes
    ----------
    event : FailureEvent
    survivor_ids : (k,) int ndarray
        Original indices of the surviving robots, in the order used by
        ``result`` (survivor ``i`` in the new plan is original robot
        ``survivor_ids[i]``).
    positions_at_failure : (k, 2) ndarray
        Survivor positions at the failure instant.
    survivors_connected : bool
        Whether the surviving network was connected when it replanned.
    result : MarchingResult
        The survivors' fresh plan into the target FoI.
    """

    event: FailureEvent
    survivor_ids: np.ndarray
    positions_at_failure: np.ndarray
    survivors_connected: bool
    result: MarchingResult


def replan_after_failure(
    original: MarchingResult,
    event: FailureEvent,
    target_foi: FieldOfInterest,
    comm_range: float,
    config: MarchingConfig | None = None,
    density: DensityFunction | None = None,
    require_connected: bool = True,
) -> ReplanOutcome:
    """Recover from robot failures by replanning the survivors' march.

    Parameters
    ----------
    original : MarchingResult
        The plan being executed when the failure happened.
    event : FailureEvent
    target_foi : FieldOfInterest
        The destination (unchanged by the failure).
    comm_range : float
    config : MarchingConfig, optional
        Planner settings for the new plan.
    density : DensityFunction, optional
    require_connected : bool
        When True (default), raise if the failures disconnected the
        surviving network - the situation the paper's Definition-2
        guarantee exists to prevent.

    Raises
    ------
    PlanningError
        If no robots survive, the failure instant is outside the plan,
        or (with ``require_connected``) the survivors are disconnected.
    """
    traj = original.trajectory
    if not (traj.t_start <= event.time <= traj.t_end):
        raise PlanningError(
            f"failure time {event.time} outside [{traj.t_start}, {traj.t_end}]"
        )
    n = original.robot_count
    failed = set(int(i) for i in event.failed)
    if not all(0 <= i < n for i in failed):
        raise PlanningError("failed robot id out of range")
    survivors = np.array([i for i in range(n) if i not in failed], dtype=int)
    if len(survivors) < 4:
        raise PlanningError("too few survivors to replan a marching problem")

    snapshot = traj.positions_at(event.time)
    positions = snapshot[survivors]
    graph = UnitDiskGraph(positions, comm_range)
    connected = graph.is_connected()
    if not connected:
        if require_connected:
            raise PlanningError(
                "survivors are disconnected at the failure instant; "
                "largest component holds "
                f"{len(graph.components[0])}/{len(survivors)} robots"
            )
        # The paper's warning made concrete: robots cut off from the
        # main network "may be excluded from the new plan and thus
        # become permanently lost".  Replan the largest component only.
        main = np.asarray(graph.components[0], dtype=int)
        survivors = survivors[main]
        positions = positions[main]

    from repro.robots.robot import RadioSpec

    radio = RadioSpec.from_comm_range(comm_range)
    swarm = Swarm(positions, radio)
    planner = MarchingPlanner(config or MarchingConfig())
    result = planner.plan(swarm, target_foi, density=density)
    return ReplanOutcome(
        event=event,
        survivor_ids=survivors,
        positions_at_failure=positions,
        survivors_connected=connected,
        result=result,
    )
