"""ParallelMap: chunked, seeded, fault-tolerant map over pluggable backends.

The experiment harness is embarrassingly parallel - scenarios, sweep
points and figure panels are independent pure computations - so the
engine here is a deterministic ``map``:

* **Backends** ``serial`` / ``thread`` / ``process``.  The process
  backend is the throughput path (numpy work holds the GIL enough that
  threads mostly help I/O); if a pool cannot even be created (e.g. no
  ``/dev/shm`` semaphores in a sandbox) the engine degrades gracefully
  to serial execution and counts ``exec.backend_fallbacks``.
* **Chunked fan-out** - tasks ship to workers in contiguous chunks to
  amortise pickling, default ``ceil(n / (4 * workers))``.
* **Deterministic seeding** - every task runs under a seed derived from
  ``(seed, task_index)`` (see :mod:`repro.exec.seeding`), so results
  are independent of worker assignment and of the worker count.
* **Timeouts and bounded retries** - a chunk that raises or times out
  is retried up to ``retries`` times and then surfaces as
  :class:`repro.errors.ExecutionError`; retry/timeout/failure counts
  land in ``exec.*`` metrics.  A timed-out process chunk never hangs
  the caller: the pool is torn down (stuck workers terminated) and
  rebuilt for the remaining work.
* **Observability merge** - with ``collect_obs=True`` each task runs
  under its own :class:`~repro.obs.Tracer` and
  :class:`~repro.obs.Metrics`; after the map the per-task snapshots are
  merged (in task order, hence deterministically) into the parent's
  ambient registry, and the per-task spans are re-emitted to the parent
  tracer's sink tagged with ``task_index`` - this is how ``--workers N
  --trace out.jsonl`` produces one coherent trace file.

Results always come back in input order, whatever the completion order.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from typing import Any, Callable, Iterable, Sequence

from repro.errors import ExecutionError
from repro.exec.seeding import derive_seed, seeded
from repro.obs import Metrics, Tracer, activate, activate_metrics, get_metrics, get_tracer, span

try:  # BrokenProcessPool moved around across versions; resolve defensively
    from concurrent.futures.process import BrokenProcessPool
except ImportError:  # pragma: no cover - ancient pythons only
    BrokenProcessPool = RuntimeError  # type: ignore[assignment,misc]

__all__ = ["BACKENDS", "ParallelMap", "parallel_map", "resolve_workers"]

BACKENDS = ("serial", "thread", "process")

_WORKERS_ENV = "REPRO_WORKERS"


def resolve_workers(workers: int | None) -> int:
    """Effective worker count: explicit value, else ``REPRO_WORKERS``, else 1."""
    if workers is not None:
        return max(1, int(workers))
    env = os.environ.get(_WORKERS_ENV, "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return 1


def _run_chunk(
    fn: Callable[[Any], Any],
    chunk: Sequence[tuple[int, Any, int]],
    collect_obs: bool,
) -> list[tuple[int, Any, list[dict] | None, dict | None]]:
    """Execute one chunk of ``(index, item, seed)`` tasks.

    Top-level (hence picklable) so the process backend can ship it.
    Each task runs under its derived seed; with ``collect_obs`` it also
    runs under a private tracer/metrics pair whose contents ride back
    with the result for the parent to merge.
    """
    outcomes: list[tuple[int, Any, list[dict] | None, dict | None]] = []
    for index, item, task_seed in chunk:
        with seeded(task_seed):
            if collect_obs:
                tracer = Tracer()
                metrics = Metrics()
                with activate(tracer), activate_metrics(metrics):
                    result = fn(item)
                outcomes.append((
                    index,
                    result,
                    [r.to_dict() for r in tracer.get_trace()],
                    metrics.snapshot(),
                ))
            else:
                outcomes.append((index, fn(item), None, None))
    return outcomes


class ParallelMap:
    """Deterministic parallel ``map`` with retries, timeouts and obs merge.

    Parameters
    ----------
    backend : {"serial", "thread", "process"}
    workers : int, optional
        Worker count; ``None`` reads ``REPRO_WORKERS`` (default 1).  A
        resolved count of 1 always executes serially.
    chunk_size : int, optional
        Tasks per worker submission (default ``ceil(n / (4*workers))``).
    timeout : float, optional
        Seconds allowed per *task* once its chunk is being waited on
        (a chunk of ``k`` tasks gets ``k * timeout``).  Unenforced on
        the serial backend; on the thread backend a timed-out task
        cannot be interrupted, only abandoned.
    retries : int
        Extra attempts for a failed or timed-out chunk (default 1).
    seed : int
        Root seed for per-task deterministic seeding.
    collect_obs : bool
        Run tasks under private tracers/metrics and merge them back
        (default True).

    Raises
    ------
    ExecutionError
        From :meth:`map`, when a chunk still fails after its retry
        budget.
    """

    def __init__(
        self,
        backend: str = "serial",
        workers: int | None = None,
        chunk_size: int | None = None,
        timeout: float | None = None,
        retries: int = 1,
        seed: int = 0,
        collect_obs: bool = True,
    ) -> None:
        if backend not in BACKENDS:
            raise ExecutionError(
                f"unknown backend {backend!r}; expected one of {BACKENDS}"
            )
        if chunk_size is not None and chunk_size < 1:
            raise ExecutionError("chunk_size must be positive")
        if retries < 0:
            raise ExecutionError("retries must be non-negative")
        if timeout is not None and timeout <= 0:
            raise ExecutionError("timeout must be positive")
        self.backend = backend
        self.workers = resolve_workers(workers)
        self.chunk_size = chunk_size
        self.timeout = timeout
        self.retries = retries
        self.seed = int(seed)
        self.collect_obs = collect_obs

    # ------------------------------------------------------------------

    def map(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> list[Any]:
        """Apply ``fn`` to every item; results in input order."""
        tasks = [
            (index, item, derive_seed(self.seed, index))
            for index, item in enumerate(items)
        ]
        if not tasks:
            return []
        backend = self.backend if self.workers > 1 else "serial"
        metrics = get_metrics()
        metrics.counter("exec.tasks_submitted").inc(len(tasks))
        with span(
            "exec.map", backend=backend, workers=self.workers, tasks=len(tasks)
        ) as sp_:
            chunks = self._chunk(tasks)
            if backend == "serial":
                outcomes = self._map_serial(fn, chunks)
            else:
                outcomes = self._map_pooled(fn, chunks, backend)
            sp_.set_attributes(chunks=len(chunks))
        outcomes.sort(key=lambda o: o[0])
        self._merge_obs(outcomes)
        metrics.counter("exec.tasks_completed").inc(len(tasks))
        return [result for _, result, _, _ in outcomes]

    # ------------------------------------------------------------------

    def _chunk(self, tasks: list) -> list[list]:
        if self.chunk_size is not None:
            size = self.chunk_size
        else:
            size = max(1, -(-len(tasks) // (4 * max(1, self.workers))))
        return [tasks[i : i + size] for i in range(0, len(tasks), size)]

    def _map_serial(self, fn, chunks: list[list]) -> list:
        outcomes: list = []
        for chunk in chunks:
            outcomes.extend(self._attempt_serial(fn, chunk))
        return outcomes

    def _attempt_serial(self, fn, chunk: list) -> list:
        metrics = get_metrics()
        last: Exception | None = None
        for attempt in range(self.retries + 1):
            try:
                return _run_chunk(fn, chunk, self.collect_obs)
            except Exception as exc:
                last = exc
                if attempt < self.retries:
                    metrics.counter("exec.task_retries").inc()
        metrics.counter("exec.tasks_failed").inc(len(chunk))
        raise ExecutionError(
            f"task chunk {self._chunk_label(chunk)} failed after "
            f"{self.retries + 1} attempt(s): {last!r}"
        ) from last

    # ------------------------------------------------------------------

    def _map_pooled(self, fn, chunks: list[list], backend: str) -> list:
        if backend == "process":
            # An unpicklable fn can never reach a worker; failing it in
            # the feeder thread wedges the pool, so reject it up front.
            try:
                pickle.dumps(fn)
            except Exception as exc:
                get_metrics().counter("exec.tasks_failed").inc(
                    sum(len(c) for c in chunks)
                )
                raise ExecutionError(
                    f"cannot ship {fn!r} to process workers: it does not "
                    f"pickle ({exc!r}); use the thread or serial backend"
                ) from exc
        executor = self._make_executor(backend)
        if executor is None:
            get_metrics().counter("exec.backend_fallbacks").inc()
            return self._map_serial(fn, chunks)
        metrics = get_metrics()
        outcomes: list = []
        attempts = {id(chunk): 0 for chunk in chunks}
        try:
            pending = [
                (chunk, executor.submit(_run_chunk, fn, chunk, self.collect_obs))
                for chunk in chunks
            ]
            while pending:
                chunk, future = pending.pop(0)
                chunk_timeout = (
                    None if self.timeout is None else self.timeout * len(chunk)
                )
                try:
                    outcomes.extend(future.result(timeout=chunk_timeout))
                    continue
                except FuturesTimeoutError as exc:
                    metrics.counter("exec.task_timeouts").inc()
                    future.cancel()
                    # A stuck process worker would otherwise hold its
                    # slot (and hang interpreter exit); tear the pool
                    # down and continue on a fresh one.
                    if backend == "process":
                        self._teardown(executor)
                        executor = self._make_executor(backend)
                    failure: Exception = exc
                except BrokenProcessPool as exc:
                    self._teardown(executor)
                    executor = self._make_executor(backend)
                    failure = exc
                except Exception as exc:
                    failure = exc
                attempts[id(chunk)] += 1
                if attempts[id(chunk)] <= self.retries:
                    metrics.counter("exec.task_retries").inc()
                    if executor is None:
                        # Pool could not be rebuilt: finish serially.
                        metrics.counter("exec.backend_fallbacks").inc()
                        outcomes.extend(self._attempt_serial(fn, chunk))
                        continue
                    pending.append((
                        chunk,
                        executor.submit(_run_chunk, fn, chunk, self.collect_obs),
                    ))
                    continue
                metrics.counter("exec.tasks_failed").inc(len(chunk))
                raise ExecutionError(
                    f"task chunk {self._chunk_label(chunk)} failed after "
                    f"{self.retries + 1} attempt(s) on the {backend} "
                    f"backend: {failure!r}"
                ) from failure
        finally:
            if executor is not None:
                # Always terminate leftover workers: every wanted result
                # is already in hand (or we are raising), and a worker
                # wedged by a pickling failure would otherwise block
                # interpreter exit in the atexit join.
                self._teardown(executor)
        return outcomes

    def _make_executor(self, backend: str) -> Executor | None:
        try:
            if backend == "thread":
                return ThreadPoolExecutor(max_workers=self.workers)
            return ProcessPoolExecutor(max_workers=self.workers)
        except Exception:
            return None

    @staticmethod
    def _teardown(executor: Executor) -> None:
        """Shut a pool down without ever waiting on a stuck worker."""
        processes = list(getattr(executor, "_processes", {}).values())
        executor.shutdown(wait=False, cancel_futures=True)
        for proc in processes:
            try:
                proc.terminate()
            except Exception:
                pass

    @staticmethod
    def _chunk_label(chunk: list) -> str:
        indices = [index for index, _, _ in chunk]
        if len(indices) == 1:
            return f"[task {indices[0]}]"
        return f"[tasks {indices[0]}..{indices[-1]}]"

    # ------------------------------------------------------------------

    def _merge_obs(self, outcomes: list) -> None:
        """Fold per-task spans/metrics (task order) into the parent obs."""
        if not self.collect_obs:
            return
        metrics = get_metrics()
        tracer = get_tracer()
        for index, _, spans, snapshot in outcomes:
            if snapshot:
                metrics.merge(snapshot)
            if spans:
                tracer.absorb_records(spans, task_index=index)


def parallel_map(
    fn: Callable[[Any], Any],
    items: Iterable[Any],
    backend: str = "process",
    workers: int | None = None,
    **kwargs: Any,
) -> list[Any]:
    """One-shot convenience wrapper around :class:`ParallelMap`."""
    return ParallelMap(backend=backend, workers=workers, **kwargs).map(fn, items)
