"""Job store for the planning service: admission, dedup, priorities, TTL.

A :class:`JobQueue` is the service's single source of truth about work.
It is a bounded, priority-ordered queue of :class:`Job` records keyed by
a *content address*: the :func:`repro.exec.stable_hash` of the
normalised plan request.  Identical requests therefore coalesce onto
one job id - the second submitter gets the same job (and eventually the
same cached result) instead of a second computation - which is what
makes a stampede of identical scenario transitions cheap to serve.

States and transitions::

    queued --claim--> running --complete--> done
       |                 |
       |cancel           |fail
       v                 v
    cancelled          failed

Terminal jobs (``done``/``failed``/``cancelled``) stay in the store so
results can be fetched and duplicates keep coalescing, until TTL-based
eviction removes them; resubmitting a *cancelled* or *failed* request
revives the job for a fresh attempt.  Capacity bounds the number of
``queued`` jobs only - running and terminal jobs do not count against
admission - and an at-capacity submit raises :class:`QueueFull`, which
the HTTP layer turns into ``429 Retry-After``.

The queue is thread-safe: the asyncio server thread submits and the
executor-bridge dispatcher threads claim, under one condition variable.
Counters land in the ambient :mod:`repro.obs` metrics registry under
``service.jobs.*``.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.errors import ServiceError
from repro.exec import stable_hash
from repro.obs import get_metrics

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycle
    from repro.service.journal import JobJournal

__all__ = [
    "JOB_STATES",
    "PROVENANCES",
    "Job",
    "JobExpiredError",
    "JobQueue",
    "QueueClosed",
    "QueueFull",
    "job_id_for",
    "normalize_mission_request",
    "normalize_plan_request",
]

JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

#: how a job entered this process: a fresh submission, a journalled job
#: re-installed by recovery, or a mid-claim job re-queued for another run.
PROVENANCES = ("new", "recovered", "retried")

#: evicted-job memory bound: enough to answer ``410 expired`` for any
#: client still polling a recently evicted id, without growing forever.
_EVICTED_MEMORY = 1024

#: request fields accepted by ``POST /v1/plan`` -> (default, caster)
_REQUEST_FIELDS = {
    "separation_factor": (20.0, float),
    "methods": (None, None),  # handled specially
    "foi_target_points": (500, int),
    "lloyd_grid_target": (2000, int),
    "resolution": (32, int),
}


class QueueFull(ServiceError):
    """Admission refused: the queue already holds ``capacity`` jobs.

    ``retry_after_s`` carries the server's backlog-drain estimate when
    one is known (the client attaches the ``Retry-After`` header value).
    """

    def __init__(self, message: str, retry_after_s: float | None = None) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


class QueueClosed(ServiceError):
    """Admission refused: the service is draining and will not restart."""


class JobExpiredError(ServiceError):
    """The job's result existed but was TTL-evicted before this fetch.

    Distinct from an unknown id (plain 404) so clients stop polling and
    resubmit instead of retrying: the work is gone, not pending.
    ``evicted_at`` is the wall-clock eviction time when the server still
    remembers it.
    """

    def __init__(self, message: str, evicted_at: float | None = None) -> None:
        super().__init__(message)
        self.evicted_at = evicted_at


def normalize_plan_request(doc: Any) -> tuple[dict[str, Any], int]:
    """Validate a ``POST /v1/plan`` body into its canonical dict form.

    Returns ``(request, priority)``.  The request dict is *canonical* -
    scenario ids sorted, methods in :data:`DEFAULT_METHODS` order,
    every knob present with its default filled in - so that any two
    submissions meaning the same computation hash to the same job id.
    ``priority`` is admission metadata, not part of the computation, and
    is deliberately excluded from the canonical dict.

    Raises
    ------
    ServiceError
        On missing/unknown fields or out-of-range values.
    """
    from repro.experiments import DEFAULT_METHODS, SCENARIOS

    if not isinstance(doc, dict):
        raise ServiceError("plan request must be a JSON object")
    body = dict(doc)
    priority_raw = body.pop("priority", 0)
    try:
        priority = int(priority_raw)
    except (TypeError, ValueError):
        raise ServiceError(f"priority must be an integer, got {priority_raw!r}")

    raw_ids = body.pop("scenario_ids", None)
    if raw_ids is None and "scenario_id" in body:
        raw_ids = [body.pop("scenario_id")]
    if not raw_ids:
        raise ServiceError("plan request needs 'scenario_ids' (or 'scenario_id')")
    if not isinstance(raw_ids, (list, tuple)):
        raw_ids = [raw_ids]
    try:
        scenario_ids = sorted({int(s) for s in raw_ids})
    except (TypeError, ValueError):
        raise ServiceError(f"scenario ids must be integers, got {raw_ids!r}")
    unknown_ids = [s for s in scenario_ids if s not in SCENARIOS]
    if unknown_ids:
        raise ServiceError(
            f"unknown scenario ids {unknown_ids}; valid ids are {sorted(SCENARIOS)}"
        )

    methods_raw = body.pop("methods", None)
    if methods_raw is None:
        methods = list(DEFAULT_METHODS)
    else:
        if isinstance(methods_raw, str):
            methods_raw = [methods_raw]
        bad = [m for m in methods_raw if m not in DEFAULT_METHODS]
        if bad:
            raise ServiceError(
                f"unknown methods {bad}; valid methods are {list(DEFAULT_METHODS)}"
            )
        # Canonical order: the same set of methods must hash identically.
        methods = [m for m in DEFAULT_METHODS if m in set(methods_raw)]
        if not methods:
            raise ServiceError("plan request needs at least one method")

    request: dict[str, Any] = {"scenario_ids": scenario_ids, "methods": methods}
    for name, (default, caster) in _REQUEST_FIELDS.items():
        if name == "methods":
            continue
        value = body.pop(name, default)
        try:
            value = caster(value)
        except (TypeError, ValueError):
            raise ServiceError(f"{name} must be a {caster.__name__}, got {value!r}")
        if value <= 0:
            raise ServiceError(f"{name} must be positive, got {value!r}")
        request[name] = value
    if body:
        raise ServiceError(
            f"unknown plan request fields {sorted(body)}; accepted fields are "
            f"{sorted(['scenario_ids', 'scenario_id', 'priority', *_REQUEST_FIELDS])}"
        )
    return request, priority


def normalize_mission_request(doc: Any) -> tuple[dict[str, Any], int]:
    """Validate a ``POST /v1/mission`` body into its canonical dict form.

    The body carries ``spec`` (required), ``config`` and ``faults``
    (optional), and ``priority`` (admission metadata).  Spec and config
    are round-tripped through :class:`~repro.missions.MissionSpec` /
    :class:`~repro.missions.MissionConfig` so every knob is present
    with its default filled in, and the fault schedule is rebuilt via
    :func:`~repro.faults.schedule_from_dict` - any two submissions
    meaning the same mission hash to the same job id.  The canonical
    dict carries ``"kind": "mission"`` so mission job ids can never
    collide with plan-batch ids.

    Raises
    ------
    ServiceError
        On missing/unknown fields or an invalid spec/config/schedule.
    """
    from repro.errors import MissionError, PlanningError
    from repro.faults import schedule_from_dict
    from repro.missions import MissionConfig, MissionSpec

    if not isinstance(doc, dict):
        raise ServiceError("mission request must be a JSON object")
    body = dict(doc)
    priority_raw = body.pop("priority", 0)
    try:
        priority = int(priority_raw)
    except (TypeError, ValueError):
        raise ServiceError(f"priority must be an integer, got {priority_raw!r}")

    spec_doc = body.pop("spec", None)
    if not isinstance(spec_doc, dict):
        raise ServiceError("mission request needs a 'spec' object")
    config_doc = body.pop("config", None) or {}
    if not isinstance(config_doc, dict):
        raise ServiceError("mission 'config' must be a JSON object")
    faults_doc = body.pop("faults", None)
    if body:
        raise ServiceError(
            f"unknown mission request fields {sorted(body)}; accepted "
            "fields are ['config', 'faults', 'priority', 'spec']"
        )
    try:
        spec = MissionSpec.from_dict(spec_doc)
        config = MissionConfig.from_dict(config_doc)
        faults = None if faults_doc is None else schedule_from_dict(faults_doc)
    except (MissionError, PlanningError, TypeError) as exc:
        raise ServiceError(f"invalid mission request: {exc}") from exc

    request: dict[str, Any] = {
        "kind": "mission",
        "spec": spec.to_dict(),
        "config": config.to_dict(),
        "faults": None if faults is None else faults.to_dict(),
    }
    return request, priority


def job_id_for(request: dict[str, Any]) -> str:
    """The content address of a normalised request (the job id).

    Exposed so the HTTP frontend can route a submission to its shard
    *before* admission - :meth:`JobQueue.submit` derives the same id
    internally, so routing and dedup always agree.
    """
    return stable_hash(request)


@dataclass
class Job:
    """One unit of planning work, identified by its request's content hash.

    Timestamps are :func:`time.monotonic` values from the owning
    queue's clock - meaningful as differences, not wall-clock instants.
    ``submissions`` counts how many times this request was submitted
    (1 + the number of deduplicated resubmissions since last revival).
    """

    job_id: str
    request: dict[str, Any]
    priority: int
    seq: int
    submitted_at: float
    state: str = "queued"
    started_at: float | None = None
    finished_at: float | None = None
    result: bytes | None = None
    error: str | None = None
    submissions: int = 1
    attributes: dict[str, Any] = field(default_factory=dict)
    #: progress events for the streaming endpoint, in publish order;
    #: reset when a failed/cancelled job is revived for a fresh attempt.
    events: list[dict[str, Any]] = field(default_factory=list)
    #: one of :data:`PROVENANCES` - how this job entered the process.
    provenance: str = "new"
    #: a drain-released job parks until restart; claimers skip it.
    interrupted: bool = False
    #: hex SHA-256 of the result payload (set when a result is attached).
    result_digest: str | None = None

    @property
    def terminal(self) -> bool:
        return self.state in ("done", "failed", "cancelled")

    def to_dict(self, now: float | None = None) -> dict[str, Any]:
        """Status document served by ``GET /v1/jobs/{id}`` (no payload)."""
        queue_wait = None
        if self.started_at is not None:
            queue_wait = self.started_at - self.submitted_at
        run_s = None
        if self.started_at is not None:
            end = self.finished_at
            if end is None and now is not None:
                end = now
            if end is not None:
                run_s = end - self.started_at
        return {
            "job_id": self.job_id,
            "state": self.state,
            "priority": self.priority,
            "submissions": self.submissions,
            "provenance": self.provenance,
            "queue_wait_s": queue_wait,
            "run_s": run_s,
            "error": self.error,
            "request": dict(self.request),
        }


class JobQueue:
    """Bounded, deduplicating, priority job store (thread-safe).

    Parameters
    ----------
    capacity : int
        Maximum number of *queued* jobs; an admission beyond it raises
        :class:`QueueFull`.
    ttl_s : float
        How long terminal jobs (and their results) are retained before
        :meth:`evict_expired` may drop them.
    clock : callable
        Monotonic time source (injectable for tests).
    shard : int, optional
        The fleet shard index this queue belongs to (None for the
        single-queue service).  Purely identity: the executor bridge
        and the ``/metrics`` endpoint use it to label per-shard depth
        and claim-latency instruments.
    journal : JobJournal, optional
        Write-ahead journal.  When set, every state transition and
        progress event is durably appended (under the queue lock, so
        journal order equals transition order) before the caller
        returns; :meth:`restore` re-installs journalled jobs after a
        crash without re-journalling them.
    """

    def __init__(
        self,
        capacity: int = 64,
        ttl_s: float = 3600.0,
        clock: Callable[[], float] = time.monotonic,
        shard: int | None = None,
        journal: "JobJournal | None" = None,
    ) -> None:
        if capacity < 1:
            raise ServiceError("queue capacity must be positive")
        if ttl_s <= 0:
            raise ServiceError("job TTL must be positive")
        self.capacity = capacity
        self.ttl_s = ttl_s
        self.shard = shard
        self.journal = journal
        self._clock = clock
        self._jobs: dict[str, Job] = {}
        self._evicted: OrderedDict[str, float] = OrderedDict()
        self._cond = threading.Condition()
        self._seq = 0
        self._closed = False
        self._drain = True

    # -- admission ------------------------------------------------------

    def submit(self, request: dict[str, Any], priority: int = 0) -> tuple[Job, bool]:
        """Admit a request; returns ``(job, created)``.

        ``created`` is False when the request deduplicated onto an
        existing job (whose ``submissions`` count is bumped).  A
        cancelled or failed job is *revived*: reset to ``queued`` for a
        fresh attempt under the same id.

        Raises
        ------
        QueueFull
            When admission would exceed ``capacity`` queued jobs.
        QueueClosed
            After :meth:`close`.
        """
        job_id = stable_hash(request)
        metrics = get_metrics()
        with self._cond:
            if self._closed:
                raise QueueClosed("job queue is closed; not accepting submissions")
            self._evict_expired_locked()
            job = self._jobs.get(job_id)
            if job is not None and job.state not in ("cancelled", "failed"):
                job.submissions += 1
                metrics.counter("service.jobs.deduplicated").inc()
                return job, False
            queued = sum(1 for j in self._jobs.values() if j.state == "queued")
            if queued >= self.capacity:
                metrics.counter("service.jobs.rejected").inc()
                raise QueueFull(
                    f"queue is full ({queued}/{self.capacity} jobs queued)"
                )
            now = self._clock()
            if job is not None:  # revive a cancelled/failed job
                job.state = "queued"
                job.priority = priority
                job.submitted_at = now
                job.started_at = None
                job.finished_at = None
                job.result = None
                job.result_digest = None
                job.error = None
                job.submissions += 1
                job.seq = self._seq
                job.provenance = "new"
                job.interrupted = False
                job.events = []  # a fresh attempt starts a fresh stream
                self._journal_locked(
                    "submitted", job_id=job_id, request=job.request,
                    priority=priority, provenance="new",
                    submissions=job.submissions,
                )
                self._publish_locked(job, "queued", revived=True)
            else:
                job = Job(
                    job_id=job_id,
                    request=dict(request),
                    priority=priority,
                    seq=self._seq,
                    submitted_at=now,
                )
                self._jobs[job_id] = job
                self._evicted.pop(job_id, None)
                self._journal_locked(
                    "submitted", job_id=job_id, request=job.request,
                    priority=priority, provenance="new", submissions=1,
                )
                self._publish_locked(job, "queued", revived=False)
            self._seq += 1
            metrics.counter("service.jobs.accepted").inc()
            self._cond.notify()
            return job, True

    # -- worker side ----------------------------------------------------

    def claim(self, timeout: float | None = None) -> Job | None:
        """Take the next queued job (highest priority, FIFO within it).

        Blocks up to ``timeout`` seconds (forever when None).  Returns
        None on timeout, or when the queue is closed and - under
        draining close - no queued work remains.
        """
        deadline = None if timeout is None else self._clock() + timeout
        with self._cond:
            while True:
                candidates = [
                    j for j in self._jobs.values()
                    if j.state == "queued" and not j.interrupted
                ]
                if candidates:
                    job = min(candidates, key=lambda j: (-j.priority, j.seq))
                    job.state = "running"
                    job.started_at = self._clock()
                    self._journal_locked("claimed", job_id=job.job_id)
                    return job
                if self._closed:
                    return None
                if deadline is None:
                    self._cond.wait()
                else:
                    remaining = deadline - self._clock()
                    if remaining <= 0 or not self._cond.wait(remaining):
                        return None

    def complete(self, job_id: str, result: bytes) -> None:
        """Mark a running job ``done`` and attach its result payload."""
        self._finish(job_id, "done", result=result)

    def fail(self, job_id: str, error: str) -> None:
        """Mark a running job ``failed`` with a human-readable reason."""
        self._finish(job_id, "failed", error=error)

    def _finish(
        self,
        job_id: str,
        state: str,
        result: bytes | None = None,
        error: str | None = None,
    ) -> None:
        with self._cond:
            job = self._jobs.get(job_id)
            if job is None or job.state != "running":
                return
            job.state = state
            job.finished_at = self._clock()
            job.result = result
            job.error = error
            if state == "done" and result is not None:
                # Payload first (fsynced side file), then the ``done``
                # record: a surviving record always has its payload.
                digest = None
                if self.journal is not None:
                    digest = self.journal.put_result(job_id, result)
                else:
                    import hashlib

                    digest = hashlib.sha256(result).hexdigest()
                job.result_digest = digest
                self._journal_locked("done", job_id=job_id, digest=digest)
            else:
                self._journal_locked(state, job_id=job_id, error=error)
            self._publish_locked(job, state, error=error)
            self._cond.notify_all()

    def release(self, job_id: str) -> bool:
        """Park a *running* job back in the queue for a post-restart run.

        The graceful-drain path for long jobs: the mission runner
        checkpoints its completed epochs, the bridge releases the job,
        and the ``released`` journal record makes the next process
        re-queue it.  Released jobs are invisible to claimers in this
        process (the drain is already under way), so the job runs again
        only after a restart - resumed from its checkpoint.
        """
        with self._cond:
            job = self._jobs.get(job_id)
            if job is None or job.state != "running":
                return False
            job.state = "queued"
            job.started_at = None
            job.interrupted = True
            self._journal_locked("released", job_id=job_id)
            self._cond.notify_all()
            get_metrics().counter("service.jobs.released").inc()
            return True

    # -- progress events ------------------------------------------------

    def publish(self, job_id: str, kind: str, **data: Any) -> None:
        """Append a progress event to the job's stream (no-op if gone).

        Events are monotonically sequenced per job; the streaming
        endpoint replays from any cursor via :meth:`events_since`, so a
        reconnecting consumer never misses or re-sees an event.
        """
        with self._cond:
            job = self._jobs.get(job_id)
            if job is not None:
                self._publish_locked(job, kind, **data)
                self._cond.notify_all()

    def _publish_locked(self, job: Job, kind: str, **data: Any) -> None:
        event = {"seq": len(job.events), "kind": kind, **data}
        job.events.append(event)
        self._journal_locked("event", job_id=job.job_id, event=event)

    def _journal_locked(self, rtype: str, **fields: Any) -> None:
        if self.journal is not None:
            self.journal.append(rtype, **fields)

    def events_since(self, job_id: str, start: int = 0) -> list[dict[str, Any]]:
        """Copies of the job's events with ``seq >= start`` (empty if gone)."""
        with self._cond:
            job = self._jobs.get(job_id)
            if job is None:
                return []
            return [dict(event) for event in job.events[start:]]

    # -- lifecycle ------------------------------------------------------

    def cancel(self, job_id: str) -> bool:
        """Cancel a *queued* job; running/terminal jobs are left alone."""
        with self._cond:
            job = self._jobs.get(job_id)
            if job is None or job.state != "queued":
                return False
            job.state = "cancelled"
            job.finished_at = self._clock()
            self._journal_locked("cancelled", job_id=job_id)
            self._publish_locked(job, "cancelled")
            self._cond.notify_all()
            get_metrics().counter("service.jobs.cancelled").inc()
            return True

    def close(self, drain: bool = True) -> None:
        """Stop admissions.  With ``drain`` claimers finish the backlog
        first; without it, still-queued jobs are cancelled immediately."""
        with self._cond:
            self._closed = True
            self._drain = drain
            if not drain:
                for job in self._jobs.values():
                    # Parked (interrupted) jobs survive a non-drain
                    # close: their epochs are checkpointed and the next
                    # journal-backed boot resumes them.
                    if job.state == "queued" and not job.interrupted:
                        job.state = "cancelled"
                        job.finished_at = self._clock()
                        self._journal_locked("cancelled", job_id=job.job_id)
                        self._publish_locked(job, "cancelled")
            self._cond.notify_all()

    @property
    def closed(self) -> bool:
        return self._closed

    # -- introspection --------------------------------------------------

    def get(self, job_id: str) -> Job | None:
        with self._cond:
            return self._jobs.get(job_id)

    def depth(self) -> int:
        """Number of queued (not yet claimed) jobs."""
        with self._cond:
            return sum(1 for j in self._jobs.values() if j.state == "queued")

    def counts(self) -> dict[str, int]:
        """Job count per state (every state present, zero or not)."""
        with self._cond:
            out = {state: 0 for state in JOB_STATES}
            for job in self._jobs.values():
                out[job.state] += 1
            return out

    def jobs(self) -> list[Job]:
        """All jobs, admission order."""
        with self._cond:
            return sorted(self._jobs.values(), key=lambda j: j.seq)

    def evict_expired(self) -> int:
        """Drop terminal jobs older than the TTL; returns the count."""
        with self._cond:
            return self._evict_expired_locked()

    def _evict_expired_locked(self) -> int:
        cutoff = self._clock() - self.ttl_s
        stale = [
            job_id
            for job_id, job in self._jobs.items()
            if job.terminal and job.finished_at is not None
            and job.finished_at < cutoff
        ]
        for job_id in stale:
            del self._jobs[job_id]
            at = time.time()
            self._evicted[job_id] = at
            self._evicted.move_to_end(job_id)
            self._journal_locked("evicted", job_id=job_id, at=at)
            if self.journal is not None:
                self.journal.drop_result(job_id)
        while len(self._evicted) > _EVICTED_MEMORY:
            self._evicted.popitem(last=False)
        if stale:
            get_metrics().counter("service.jobs.evicted").inc(len(stale))
        return len(stale)

    def evicted_at(self, job_id: str) -> float | None:
        """Wall-clock eviction time of a TTL-evicted job (None if unknown).

        Unlike the monotonic job timestamps this is ``time.time()``: it
        crosses process restarts via the journal, so a client polling a
        job that expired before the crash still gets its ``410``.
        """
        with self._cond:
            return self._evicted.get(job_id)

    # -- crash recovery -------------------------------------------------

    def restore(self, states: list[dict[str, Any]],
                evicted: dict[str, float] | None = None) -> dict[str, int]:
        """Re-install journal-replayed jobs; returns per-outcome counts.

        At-least-once semantics, leaning on content-address idempotency:

        - ``queued`` jobs (including drain-``released`` ones) come back
          claimable with provenance ``recovered``;
        - ``running`` jobs were mid-claim when the process died - they
          come back ``queued`` with provenance ``retried`` and a
          ``retried`` event on their stream;
        - ``done`` jobs keep their payload when the journalled digest
          verifies, and are otherwise downgraded to ``recovered`` +
          re-queued (re-execution produces byte-identical results);
        - ``failed``/``cancelled`` jobs are restored terminal.

        Nothing is journalled here: the caller compacts the journal from
        :meth:`snapshot_state` immediately afterwards, so the restored
        form *is* the new on-disk truth.  Restored terminal jobs get a
        fresh TTL lease (their monotonic ``finished_at`` did not survive
        the old process).
        """
        stats = {"restored": 0, "requeued": 0, "retried": 0,
                 "completed": 0, "failed": 0, "cancelled": 0}
        with self._cond:
            now = self._clock()
            for state in states:
                request = state.get("request")
                job_id = state.get("job_id")
                if not isinstance(request, dict) or not isinstance(job_id, str):
                    continue
                job = Job(
                    job_id=job_id,
                    request=dict(request),
                    priority=int(state.get("priority", 0)),
                    seq=self._seq,
                    submitted_at=now,
                    submissions=int(state.get("submissions", 1)),
                    events=[dict(e) for e in state.get("events", [])],
                )
                self._seq += 1
                folded = state.get("state", "queued")
                if folded == "done":
                    payload = None
                    digest = state.get("digest")
                    if self.journal is not None:
                        payload = self.journal.get_result(job_id, digest)
                    if payload is not None:
                        job.state = "done"
                        job.provenance = "recovered"
                        job.result = payload
                        job.result_digest = digest
                        job.started_at = now
                        job.finished_at = now
                        stats["completed"] += 1
                    else:
                        # Torn or missing payload: the ack never left
                        # this process, so re-running is the contract.
                        job.state = "queued"
                        job.provenance = "recovered"
                        stats["requeued"] += 1
                elif folded in ("failed", "cancelled"):
                    job.state = folded
                    job.provenance = "recovered"
                    job.error = state.get("error")
                    job.started_at = now if folded == "failed" else None
                    job.finished_at = now
                    stats[folded] += 1
                elif folded == "running":
                    job.state = "queued"
                    job.provenance = "retried"
                    job.events.append(
                        {"seq": len(job.events), "kind": "retried"}
                    )
                    stats["retried"] += 1
                else:  # queued (fresh or drain-released)
                    job.state = "queued"
                    prior = str(state.get("provenance", "new"))
                    job.provenance = "retried" if prior == "retried" else "recovered"
                    stats["retried" if prior == "retried" else "requeued"] += 1
                stats["restored"] += 1
                self._jobs[job_id] = job
            if evicted:
                for job_id, at in evicted.items():
                    self._evicted[job_id] = float(at)
                    self._evicted.move_to_end(job_id)
                while len(self._evicted) > _EVICTED_MEMORY:
                    self._evicted.popitem(last=False)
            self._cond.notify_all()
        metrics = get_metrics()
        for key in ("restored", "requeued", "retried"):
            if stats[key]:
                metrics.counter(f"service.recovery.jobs_{key}").inc(stats[key])
        return stats

    def snapshot_state(self) -> tuple[list[dict[str, Any]], dict[str, float]]:
        """Folded-state snapshot of every live job (for compaction).

        Shape matches what :func:`repro.service.journal.replay_records`
        produces, so ``compact`` can treat live state and replayed state
        identically.
        """
        with self._cond:
            jobs = [
                {
                    "job_id": job.job_id,
                    "request": dict(job.request),
                    "priority": job.priority,
                    "provenance": job.provenance,
                    "state": job.state,
                    "interrupted": job.interrupted,
                    "events": [dict(e) for e in job.events],
                    "error": job.error,
                    "digest": job.result_digest,
                    "submissions": job.submissions,
                }
                for job in sorted(self._jobs.values(), key=lambda j: j.seq)
            ]
            return jobs, dict(self._evicted)
