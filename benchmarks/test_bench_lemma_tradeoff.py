"""E11 - Fig. 1 / Lemmas 1-2: the impossibility constructions, measured.

Lemma 1 (Fig. 1(a)): on the seven-robot slim-lattice example, the
minimum-distance assignment and the link-preserving assignment differ,
and each is strictly better on its own metric - the trade-off the whole
paper is built on.

Lemma 2 (Fig. 1(b)): on the hexagon-to-line example, *no* assignment
preserves all 12 links - verified exhaustively over all 5040
assignments, a stronger statement than the paper's prose proof.
"""

from repro.experiments import format_table, lemma1_example, lemma2_example


def test_lemma1_tradeoff(benchmark):
    ex = benchmark.pedantic(lemma1_example, rounds=1, iterations=1)
    print("\nLemma 1 (Fig. 1a) - the D vs L trade-off:")
    print(
        format_table(
            ["assignment", "total distance D", "links preserved"],
            [
                ["link-preserving", f"{ex.preserving_distance:.3f}", ex.preserving_links],
                ["minimum-distance", f"{ex.min_distance:.3f}", ex.min_distance_links],
            ],
        )
    )
    assert ex.tradeoff_holds
    assert ex.min_distance < ex.preserving_distance
    assert ex.min_distance_links < ex.preserving_links


def test_lemma2_impossibility(benchmark):
    ex = benchmark.pedantic(lemma2_example, rounds=1, iterations=1)
    print(f"\nLemma 2 (Fig. 1b) - best of all 5040 assignments keeps "
          f"{ex.best_preserved}/{ex.total_links} links")
    assert ex.full_preservation_impossible
    assert ex.total_links == 12
    # The paper: some robots must break at least two links each.
    assert ex.total_links - ex.best_preserved >= 2
