"""Structured JSON-lines event sink for traces and metrics.

One JSON object per line; spans are emitted as they close (so a trace
file is useful even if the process dies mid-run) and a metrics snapshot
can be appended at the end.  :func:`read_jsonl` is the matching loader
used by tests and by anyone post-processing a ``--trace`` file.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Any

__all__ = ["JsonlSink", "read_jsonl"]


def _jsonable(value: Any) -> Any:
    """Coerce numpy scalars and other strays into JSON-safe values."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    item = getattr(value, "item", None)
    if callable(item):  # numpy scalar
        try:
            return item()
        except (TypeError, ValueError):
            pass
    tolist = getattr(value, "tolist", None)
    if callable(tolist):  # numpy array
        return tolist()
    return str(value)


class JsonlSink:
    """Writes observability events as JSON lines.

    Parameters
    ----------
    target : str, Path or writable file object
        A path is opened (and owned) by the sink; call :meth:`close`
        or use the sink as a context manager.  A file object is
        borrowed and left open.
    """

    def __init__(self, target: str | Path | IO[str]) -> None:
        if isinstance(target, (str, Path)):
            self._file: IO[str] = open(target, "w", encoding="utf-8")
            self._owns = True
        else:
            self._file = target
            self._owns = False
        self.events_written = 0

    def emit(self, record: dict[str, Any]) -> None:
        """Write one event as a JSON line (flushed immediately)."""
        self._file.write(json.dumps(_jsonable(record)) + "\n")
        self._file.flush()
        self.events_written += 1

    def emit_metrics(self, metrics) -> None:
        """Append every instrument of a Metrics registry as an event."""
        for payload in metrics.snapshot().values():
            record = {"type": "metric"}
            record.update(payload)
            self.emit(record)

    def close(self) -> None:
        if self._owns and not self._file.closed:
            self._file.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def read_jsonl(path: str | Path) -> list[dict[str, Any]]:
    """Load a JSONL trace file back into a list of event dicts."""
    events = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events
