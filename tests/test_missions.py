"""Tests for :mod:`repro.missions`: streaming online replanning.

Covers the mission spec/target layer, the runner's determinism and
connectivity contract, fault composition, the translation-canonical
cache behaviour under a drifting target (a translated M2 mid-mission
is a disk-map cache *hit* whose replanned leg is byte-identical to a
cold solve), and the campaign driver's worker-count byte-identity.
"""

import numpy as np
import pytest

from repro.errors import MissionError
from repro.exec.cache import ContentCache, activate_cache
from repro.experiments.missions import (
    mission_campaign,
    missions_passed,
    render_missions,
    run_mission_cell,
    summary_bytes,
)
from repro.faults import CrashFault, FaultSchedule, StuckFault
from repro.io import dumps_canonical, result_to_dict
from repro.marching import MarchingConfig, MarchingPlanner
from repro.missions import (
    MOTIONS,
    MissionConfig,
    MissionRunner,
    MissionSpec,
    mission_targets,
)
from repro.obs import Metrics, activate_metrics

#: CI-sized knobs: one epoch plans in a couple of seconds.
FAST = MissionConfig(
    foi_target_points=100,
    grid_target=300,
    lloyd_max_iterations=6,
    resolution=4,
)

_HITS = "cache.harmonic.diskmap.hits"
_MISSES = "cache.harmonic.diskmap.misses"


@pytest.fixture(scope="module")
def drift_doc():
    """One drifting mission, shared by the read-only assertions."""
    spec = MissionSpec(family="corridor", seed=0, epochs=3, motion="drift")
    return MissionRunner(spec, FAST).run()


class TestSpec:
    def test_rejects_unknown_family(self):
        with pytest.raises(MissionError, match="unknown mission family"):
            MissionSpec(family="moebius")

    def test_rejects_unknown_motion(self):
        with pytest.raises(MissionError, match="unknown mission motion"):
            MissionSpec(motion="teleport")

    def test_rejects_bad_epochs_and_drift(self):
        with pytest.raises(MissionError):
            MissionSpec(epochs=0)
        with pytest.raises(MissionError):
            MissionSpec(drift_step=0.0)

    def test_spec_round_trip(self):
        spec = MissionSpec(family="annulus", seed=3, epochs=4,
                           motion="drift+deform", drift_step=0.25, name="x")
        assert MissionSpec.from_dict(spec.to_dict()) == spec

    def test_spec_rejects_unknown_fields(self):
        with pytest.raises(MissionError, match="unknown mission spec"):
            MissionSpec.from_dict({"family": "corridor", "oops": 1})

    def test_config_round_trip_and_validation(self):
        config = MissionConfig(robot_count=16, method="b")
        assert MissionConfig.from_dict(config.to_dict()) == config
        with pytest.raises(MissionError):
            MissionConfig(method="c")
        with pytest.raises(MissionError):
            MissionConfig(advance_fraction=0.0)
        with pytest.raises(MissionError, match="unknown mission config"):
            MissionConfig.from_dict({"oops": 1})


class TestTargets:
    def test_sequence_is_deterministic(self):
        spec = MissionSpec(family="star", seed=2, epochs=4, motion="drift+deform")
        _, first = mission_targets(spec, FAST)
        _, second = mission_targets(spec, FAST)
        assert len(first) == spec.epochs
        for a, b in zip(first, second):
            assert np.array_equal(a.outer.vertices, b.outer.vertices)

    def test_drift_is_rigid_translation(self):
        spec = MissionSpec(family="corridor", seed=1, epochs=3, motion="drift")
        _, targets = mission_targets(spec, FAST)
        for prev, cur in zip(targets, targets[1:]):
            # Same shape, shifted: vertex deltas are all one vector.
            delta = cur.outer.vertices - prev.outer.vertices
            assert np.allclose(delta, delta[0])
            shift = float(np.linalg.norm(delta[0]))
            assert shift == pytest.approx(
                spec.drift_step * FAST.comm_range, rel=1e-9
            )

    def test_deform_preserves_area_and_centroid(self):
        spec = MissionSpec(family="corridor", seed=1, epochs=3, motion="deform")
        _, targets = mission_targets(spec, FAST)
        base = targets[0]
        for cur in targets[1:]:
            assert cur.area == pytest.approx(base.area, rel=1e-6)
            assert np.allclose(cur.centroid, base.centroid, atol=1e-6)
            assert not np.array_equal(
                cur.outer.vertices[:4], base.outer.vertices[:4]
            )


class TestRunner:
    def test_document_shape(self, drift_doc):
        assert drift_doc["kind"] == "mission"
        assert len(drift_doc["epochs"]) == 3
        summary = drift_doc["summary"]
        assert summary["completed"] and summary["replans"] == 3
        for epoch, record in enumerate(drift_doc["epochs"]):
            assert record["epoch"] == epoch
            assert record["plan_diff"]["epoch"] == epoch
            assert record["samples"] >= 2
            assert record["plan_digest"]

    def test_connectivity_holds_every_instant(self, drift_doc):
        assert drift_doc["summary"]["c_violations"] == 0
        assert drift_doc["summary"]["connected_all"]
        assert all(r["c_violations"] == 0 for r in drift_doc["epochs"])

    def test_drift_replans_hit_the_diskmap_cache(self, drift_doc):
        # Epoch 0 is the cold solve; every later epoch retargets a
        # rigid translation of M2, which the translation-canonical
        # cache must serve as a hit.
        for record in drift_doc["epochs"][1:]:
            assert record["plan_diff"]["cache_hits"] >= 1
        assert drift_doc["summary"]["cache_hits"] >= 2

    def test_byte_identical_across_runs(self, drift_doc):
        spec = MissionSpec(family="corridor", seed=0, epochs=3, motion="drift")
        again = MissionRunner(spec, FAST).run()
        assert dumps_canonical(again) == dumps_canonical(drift_doc)

    def test_progress_events_ordered(self):
        spec = MissionSpec(family="corridor", seed=0, epochs=2, motion="drift")
        events = []
        MissionRunner(spec, FAST).run(
            progress=lambda kind, data: events.append((kind, data))
        )
        kinds = [k for k, _ in events]
        assert kinds == ["plan_diff", "epoch", "plan_diff", "epoch"]
        assert [d["epoch"] for _, d in events] == [0, 0, 1, 1]
        # Latency is a live-path measurement, never part of the document.
        assert all("replan_latency_s" in d for k, d in events if k == "epoch")

    def test_deform_mission_completes(self):
        spec = MissionSpec(family="corridor", seed=0, epochs=2, motion="deform")
        doc = MissionRunner(spec, FAST).run()
        assert doc["summary"]["connected_all"]
        # A redrawn shape is a genuine re-solve: no hit on its leg.
        assert doc["epochs"][1]["plan_diff"]["target_deformed"]


class TestFaultComposition:
    def test_crash_mid_mission_removes_robots(self):
        spec = MissionSpec(family="corridor", seed=0, epochs=2, motion="drift")
        base = MissionRunner(spec, FAST).run()
        victim = 12
        faults = FaultSchedule(
            crashes=(CrashFault(at=0.75, robots=(victim,)),), name="one-down"
        )
        doc = MissionRunner(spec, FAST, faults=faults).run()
        assert doc["summary"]["survivors"] == base["summary"]["survivors"] - 1
        assert doc["summary"]["fault_replans"] == 1
        assert doc["summary"]["connected_all"]
        recovery = doc["epochs"][1]["recoveries"][0]
        assert recovery["failed"] == [victim]
        assert recovery["connected"]
        # Epoch 0 ran fault-free and must be untouched by the schedule.
        assert doc["epochs"][0]["recoveries"] == []
        assert (
            doc["epochs"][0]["plan_digest"] == base["epochs"][0]["plan_digest"]
        )

    def test_rejects_non_crash_schedules(self):
        faults = FaultSchedule(
            stucks=(StuckFault(at=0.5, robots=(1,), duration=0.1),)
        )
        with pytest.raises(MissionError, match="crash faults only"):
            MissionRunner(MissionSpec(), FAST, faults=faults)

    def test_mass_casualty_is_typed_error(self):
        spec = MissionSpec(family="corridor", seed=0, epochs=2, motion="drift")
        faults = FaultSchedule(
            crashes=(CrashFault(at=0.6, robots=tuple(range(23))),)
        )
        with pytest.raises(MissionError) as err:
            MissionRunner(spec, FAST, faults=faults).run()
        assert err.value.epoch == 1


class TestTranslationCache:
    def test_translated_target_hits_and_matches_cold_solve(self):
        """Satellite: pure translation of M2 mid-mission is a cache hit
        and the replanned leg is byte-identical to a cold solve."""
        spec = MissionSpec(family="corridor", seed=0, epochs=1)
        scenario, (m2,) = mission_targets(spec, FAST)
        shifted = m2.translated((137.5, -42.25))
        planner = MarchingPlanner(FAST.marching_config())

        with activate_metrics(Metrics()) as metrics, activate_cache(
            ContentCache(16)
        ):
            planner.plan(scenario.swarm, m2)  # seeds the canonical entry
            hits0 = metrics.counter(_HITS).value
            warm = planner.plan(scenario.swarm, shifted)
            assert metrics.counter(_HITS).value > hits0

        with activate_metrics(Metrics()) as metrics, activate_cache(
            ContentCache(16)
        ):
            cold = planner.plan(scenario.swarm, shifted)
            assert metrics.counter(_HITS).value == 0
            assert metrics.counter(_MISSES).value > 0

        assert dumps_canonical(result_to_dict(warm)) == dumps_canonical(
            result_to_dict(cold)
        )


class TestCampaign:
    def test_campaign_byte_identical_across_workers(self):
        kwargs = dict(
            families=("corridor",), motions=("drift",), seeds=(0,),
            epochs=2, config=FAST,
        )
        serial = mission_campaign(workers=1, **kwargs)
        fanned = mission_campaign(workers=2, **kwargs)
        assert summary_bytes(serial) == summary_bytes(fanned)
        assert missions_passed(serial)
        assert serial["summary"]["cells"] == 1
        rendered = render_missions(serial)
        assert "corridor" in rendered and "canonical digest" in rendered

    def test_campaign_rejects_unknown_axes(self):
        with pytest.raises(MissionError, match="families"):
            mission_campaign(families=("nowhere",), config=FAST)
        with pytest.raises(MissionError, match="motions"):
            mission_campaign(motions=("teleport",), config=FAST)

    def test_error_cells_are_typed_rows(self):
        spec = MissionSpec(family="corridor", seed=0, epochs=1)
        row = run_mission_cell(spec, FAST)
        assert row["outcome"] == "pass" and row["mission_sha256"]


class TestMotionsConstant:
    def test_motions_tuple(self):
        assert MOTIONS == ("drift", "deform", "drift+deform")
