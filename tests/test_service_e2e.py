"""End-to-end acceptance tests: the service against the real harness.

Two contracts from the service issue are verified here:

* a plan fetched through the service is **byte-identical** to the same
  scenario run directly through :mod:`repro.experiments.harness`
  (same request knobs, same canonical serialisation), and
* 16 concurrent submissions of 4 distinct scenarios complete with
  exactly 4 solves - deduplication collapses the other 12 - with the
  counts read back from ``/metrics``, plus cross-job disk-map cache
  hits through the shared service cache.

Small knobs keep the solves test-sized; the pipeline is still the full
planner (triangulation, harmonic maps, rotation search, Lloyd).
"""

import threading

import pytest

from repro.experiments import get_scenario, run_scenarios
from repro.io import dumps_canonical, plan_document, scenario_run_from_dict
from repro.service import PlanningService, ServiceClient

KW = dict(foi_target_points=200, lloyd_grid_target=600, resolution=12)
METHODS = ["ours (a)", "Hungarian"]


@pytest.fixture(scope="module")
def service():
    with PlanningService(port=0, dispatchers=2, capacity=32) as svc:
        yield svc


@pytest.fixture(scope="module")
def client(service):
    return ServiceClient(port=service.port, timeout=60.0)


def metric_value(metrics, name, field="value"):
    payload = metrics.get(name)
    return payload.get(field, 0) if payload else 0


class TestByteIdentity:
    def test_service_result_matches_direct_harness_run(self, client):
        submitted = client.submit(
            [1], separation_factor=12.0, methods=METHODS, **KW
        )
        status = client.wait(submitted["job_id"], timeout=600.0, poll_s=0.2)
        assert status["state"] == "done", status.get("error")
        served = client.result_bytes(submitted["job_id"])

        direct = run_scenarios(
            [get_scenario(1)],
            separation_factor=12.0,
            methods=tuple(METHODS),
            workers=1,
            **KW,
        )
        assert served == dumps_canonical(plan_document(direct))

    def test_round_trip_through_document(self, client):
        submitted = client.submit(
            [1], separation_factor=12.0, methods=METHODS, **KW
        )
        client.wait(submitted["job_id"], timeout=600.0, poll_s=0.2)
        document = client.result(submitted["job_id"])
        run = scenario_run_from_dict(document["runs"]["1"])
        assert run.scenario_id == 1
        assert set(run.evaluations) == set(METHODS)
        assert run.evaluations["ours (a)"].final_positions.shape[1] == 2

    def test_warm_cache_serves_second_job(self, client):
        """A new job differing only in metric resolution reuses every
        disk-map entry from the module's earlier solves."""
        before = client.metrics()
        submitted = client.submit(
            [1], separation_factor=12.0, methods=METHODS,
            foi_target_points=KW["foi_target_points"],
            lloyd_grid_target=KW["lloyd_grid_target"],
            resolution=16,
        )
        status = client.wait(submitted["job_id"], timeout=600.0, poll_s=0.2)
        assert status["state"] == "done", status.get("error")
        after = client.metrics()
        hits = (
            metric_value(after, "cache.harmonic.diskmap.hits")
            - metric_value(before, "cache.harmonic.diskmap.hits")
        )
        misses = (
            metric_value(after, "cache.harmonic.diskmap.misses")
            - metric_value(before, "cache.harmonic.diskmap.misses")
        )
        assert hits >= 1
        assert misses == 0


class TestConcurrentDeduplication:
    def test_16_submissions_4_scenarios_exactly_4_solves(self, client):
        scenario_ids = (1, 2, 4, 5)
        before = client.metrics()

        job_ids = []
        errors = []
        lock = threading.Lock()

        def submit(sid):
            try:
                submitted = client.submit(
                    [sid],
                    separation_factor=10.0,
                    methods=["Hungarian"],
                    foi_target_points=200,
                    lloyd_grid_target=600,
                    resolution=8,
                )
                with lock:
                    job_ids.append(submitted["job_id"])
            except Exception as exc:  # surfaced after the join
                with lock:
                    errors.append(exc)

        threads = [
            threading.Thread(target=submit, args=(scenario_ids[i % 4],))
            for i in range(16)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert not errors, errors
        assert len(job_ids) == 16
        assert len(set(job_ids)) == 4  # identical requests coalesced

        for job_id in set(job_ids):
            status = client.wait(job_id, timeout=600.0, poll_s=0.2)
            assert status["state"] == "done", status.get("error")

        after = client.metrics()
        solved = (
            metric_value(after, "service.jobs.solved")
            - metric_value(before, "service.jobs.solved")
        )
        deduplicated = (
            metric_value(after, "service.jobs.deduplicated")
            - metric_value(before, "service.jobs.deduplicated")
        )
        accepted = (
            metric_value(after, "service.jobs.accepted")
            - metric_value(before, "service.jobs.accepted")
        )
        assert solved == 4
        assert deduplicated == 12
        assert accepted == 4


class TestShardedFleetE2E:
    """The same dedup contract against a 2-shard fleet.

    Runs last in the module so the shared service cache is warm: the
    fleet re-solves the 16-submission matrix through real planners but
    every disk-map entry is already present, keeping this test-sized.
    """

    def test_16_submissions_on_2_shards_exactly_4_solves(self, service):
        with PlanningService(
            port=0,
            dispatchers=2,
            capacity=32,
            service_workers=2,
            cache=service.cache,
        ) as fleet:
            client = ServiceClient(port=fleet.port, timeout=60.0)
            single = ServiceClient(port=service.port, timeout=60.0)
            scenario_ids = (1, 2, 4, 5)
            before = client.metrics()

            job_ids = []
            shards = {}
            errors = []
            lock = threading.Lock()

            def submit(sid):
                try:
                    submitted = client.submit(
                        [sid],
                        separation_factor=10.0,
                        methods=["Hungarian"],
                        foi_target_points=200,
                        lloyd_grid_target=600,
                        resolution=8,
                    )
                    with lock:
                        job_ids.append(submitted["job_id"])
                        shards[submitted["job_id"]] = submitted["shard"]
                except Exception as exc:
                    with lock:
                        errors.append(exc)

            threads = [
                threading.Thread(target=submit, args=(scenario_ids[i % 4],))
                for i in range(16)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30.0)
            assert not errors, errors
            assert len(job_ids) == 16
            assert len(set(job_ids)) == 4

            for job_id in set(job_ids):
                status = client.wait(job_id, timeout=600.0, poll_s=0.2)
                assert status["state"] == "done", status.get("error")

            after = client.metrics()
            for name, expected in (
                ("service.jobs.solved", 4),
                ("service.jobs.deduplicated", 12),
                ("service.jobs.accepted", 4),
            ):
                delta = (
                    metric_value(after, name) - metric_value(before, name)
                )
                assert delta == expected, name

            # Routing agrees with the service's own router, and the
            # fleet's results are byte-identical to the single-shard
            # service's for the same requests.
            for job_id in set(job_ids):
                expected_shard = fleet._router.shard_for(job_id)
                assert shards[job_id] == expected_shard
                fleet_bytes = client.result_bytes(job_id)
                request = client.status(job_id)["request"]
                resubmitted = single.submit(
                    request["scenario_ids"],
                    separation_factor=10.0,
                    methods=["Hungarian"],
                    foi_target_points=200,
                    lloyd_grid_target=600,
                    resolution=8,
                )
                assert resubmitted["job_id"] == job_id
                single.wait(job_id, timeout=600.0, poll_s=0.2)
                assert single.result_bytes(job_id) == fleet_bytes

            health = client.healthz()
            assert health["service_workers"] == 2
            assert len(health["shards"]) == 2
