"""Fault injection and resilient mission execution.

The paper motivates ANR systems with recoverability: "the failure of an
individual robot can be recovered by its peers", and the global-
connectivity invariant (Definition 2) exists so survivors can
coordinate a new plan mid-march.  This package turns that claim into
running, measured code:

* :mod:`repro.faults.schedule` - declarative, seeded fault schedules:
  robot crashes (single, clustered, cascading), stuck/slow robots, and
  message-level faults (loss windows, delay, duplication) shared with
  the distributed runtime's :class:`~repro.distributed.runtime.LinkFaults`.
* :mod:`repro.faults.executor` - a resilient executor that runs a full
  marching transition under a schedule: detect each failure at its
  instant, freeze the march, cascade through replanning, escort-rejoin
  cut survivors, and raise a typed
  :class:`~repro.errors.UnrecoverableError` when recovery is impossible
  - never a silent partial plan, never a hang.
"""

from repro.distributed.runtime import LinkFaults
from repro.errors import UnrecoverableError
from repro.faults.executor import (
    ChaosRunReport,
    ResilientExecutor,
    SegmentRecord,
    execute_with_faults,
    rejoin_components,
)
from repro.faults.schedule import (
    ARCHETYPES,
    CrashFault,
    FaultSchedule,
    SlowFault,
    StuckFault,
    build_archetype_schedule,
    random_schedule,
    schedule_from_dict,
)

__all__ = [
    "ARCHETYPES",
    "ChaosRunReport",
    "CrashFault",
    "FaultSchedule",
    "LinkFaults",
    "ResilientExecutor",
    "SegmentRecord",
    "SlowFault",
    "StuckFault",
    "UnrecoverableError",
    "build_archetype_schedule",
    "execute_with_faults",
    "random_schedule",
    "rejoin_components",
    "schedule_from_dict",
]
