"""Tests for the chaos sweep: determinism, aggregation, CLI."""

import json

import pytest

from repro.experiments.chaos import (
    ChaosCase,
    ChaosConfig,
    chaos_sweep,
    render_chaos,
    run_chaos_case,
    summary_bytes,
)

SMALL = ChaosConfig(robot_count=81)
MATRIX = dict(
    scenario_ids=(1,), archetypes=("single", "cluster"), seeds=(0,),
    config=SMALL,
)


@pytest.fixture(scope="module")
def sweep():
    return chaos_sweep(workers=1, **MATRIX)


class TestSweep:
    def test_matrix_order_and_shape(self, sweep):
        cases = sweep["cases"]
        assert [(c["scenario_id"], c["archetype"]) for c in cases] == [
            (1, "single"), (1, "cluster"),
        ]
        assert sweep["summary"]["cases"] == 2

    def test_every_case_has_binary_outcome(self, sweep):
        for case in sweep["cases"]:
            assert case["outcome"] in ("recovered", "unrecoverable")
            if case["outcome"] == "recovered":
                assert case["metrics"]["connected_all"]
            else:
                assert case["stage"]

    def test_summary_is_canonical_json(self, sweep):
        payload = summary_bytes(sweep)
        assert json.loads(payload) == sweep

    def test_same_seed_byte_identical(self, sweep):
        again = chaos_sweep(workers=1, **MATRIX)
        assert summary_bytes(again) == summary_bytes(sweep)

    def test_workers_do_not_change_bytes(self, sweep):
        parallel = chaos_sweep(workers=2, **MATRIX)
        assert summary_bytes(parallel) == summary_bytes(sweep)

    def test_render_mentions_every_case(self, sweep):
        text = render_chaos(sweep)
        assert "single" in text and "cluster" in text
        assert "recovered" in text

    def test_single_case_document(self):
        doc = run_chaos_case(
            ChaosCase(scenario_id=1, archetype="single", seed=0),
            config=SMALL,
        )
        assert doc["outcome"] in ("recovered", "unrecoverable")
        assert doc["robots"] == SMALL.robot_count


class TestChaosCli:
    def test_cli_writes_summary(self, tmp_path):
        from repro.cli import main

        out = tmp_path / "chaos.json"
        code = main([
            "chaos",
            "--scenarios", "1",
            "--archetypes", "single",
            "--seeds", "0",
            "--output", str(out),
        ])
        assert code == 0
        doc = json.loads(out.read_bytes())
        assert doc["summary"]["cases"] == 1
        assert doc["cases"][0]["archetype"] == "single"

    def test_cli_rejects_unknown_archetype(self, capsys):
        from repro.cli import main

        code = main(["chaos", "--archetypes", "meteor"])
        assert code == 2
        assert "meteor" in capsys.readouterr().err
