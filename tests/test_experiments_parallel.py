"""Determinism tests: parallel fan-out and caching must not change results.

The acceptance bar for the execution engine: a sweep produces
byte-identical payloads for ``workers=1`` and ``workers=2+``, and for
cache-cold vs cache-warm runs, while worker spans and metrics merge
back into the parent observability registry.
"""

import json

import pytest

from repro.exec import ContentCache, activate_cache, disk_backed_cache
from repro.experiments import (
    get_scenario,
    run_scenario,
    run_scenarios,
    sweep_separations,
    write_sweep_figures,
)
from repro.obs import Metrics, Tracer, activate, activate_metrics

# Small knobs: full pipeline, low resolution, two methods.
KW = dict(foi_target_points=200, lloyd_grid_target=600, resolution=12)
METHODS = ("ours (a)", "Hungarian")
SEPS = (10.0, 20.0)


def payload(sweep) -> bytes:
    """Canonical byte serialization of a SweepResult."""
    doc = {
        "scenario": sweep.scenario_id,
        "points": [
            {
                "separation": p.separation_factor,
                "distance_ratio": p.distance_ratio,
                "stable_link_ratio": p.stable_link_ratio,
                "connected": p.connected,
            }
            for p in sweep.points
        ],
    }
    return json.dumps(doc, sort_keys=True).encode()


@pytest.fixture(scope="module")
def sweeps():
    """The same small sweep, serial and with two worker processes."""
    spec = get_scenario(1)
    with activate(Tracer()), activate_metrics(Metrics()), \
            activate_cache(ContentCache()):
        serial = sweep_separations(spec, SEPS, METHODS, workers=1, **KW)
    tracer = Tracer()
    metrics = Metrics()
    with activate(tracer), activate_metrics(metrics), \
            activate_cache(ContentCache()):
        parallel = sweep_separations(
            spec, SEPS, METHODS, workers=2, backend="process", **KW
        )
    return serial, parallel, tracer, metrics


class TestWorkerCountDeterminism:
    def test_sweep_payload_byte_identical(self, sweeps):
        serial, parallel, _, _ = sweeps
        assert payload(serial) == payload(parallel)

    def test_figure_bytes_identical(self, sweeps, tmp_path):
        serial, parallel, _, _ = sweeps
        a = write_sweep_figures(serial, tmp_path / "serial", METHODS)
        b = write_sweep_figures(parallel, tmp_path / "parallel", METHODS)
        for pa, pb in zip(a, b):
            assert pa.read_bytes() == pb.read_bytes()

    def test_worker_spans_merge_into_parent(self, sweeps):
        _, _, tracer, _ = sweeps
        worker_spans = [
            r
            for r in tracer.get_trace()
            if r.attributes.get("origin") == "exec.worker"
        ]
        assert worker_spans
        names = {r.name for r in worker_spans}
        assert "experiment.run_scenario" in names
        assert {r.attributes["task_index"] for r in worker_spans} == {0, 1}
        # Merged spans also feed the aggregate phase table.
        assert tracer.phase_timings()["experiment.run_scenario"]["calls"] == 2

    def test_worker_metrics_merge_into_parent(self, sweeps):
        _, _, _, metrics = sweeps
        assert metrics.counter("exec.tasks_submitted").value == 2
        assert metrics.counter("exec.tasks_completed").value == 2
        # The disk-map cache counters travelled back from the workers.
        assert any(
            name.startswith("cache.harmonic.diskmap.")
            for name in metrics.snapshot()
        )


class TestCacheDeterminism:
    def test_cold_vs_warm_byte_identical(self, tmp_path):
        spec = get_scenario(1)
        with activate_metrics(Metrics()), \
                activate_cache(disk_backed_cache(tmp_path)):
            cold = run_scenario(spec, 10.0, METHODS, **KW)
        warm_metrics = Metrics()
        # A fresh ContentCache over the same directory models a new
        # process reusing --cache-dir: memory cold, disk warm.
        with activate_metrics(warm_metrics), \
                activate_cache(disk_backed_cache(tmp_path)):
            warm = run_scenario(spec, 10.0, METHODS, **KW)
        assert (
            warm_metrics.counter("cache.harmonic.diskmap.disk_hits").value > 0
        )
        for m in METHODS:
            c, w = cold.evaluations[m], warm.evaluations[m]
            assert c.total_distance == w.total_distance
            assert c.stable_link_ratio == w.stable_link_ratio
            assert c.final_positions.tobytes() == w.final_positions.tobytes()


class TestRunScenariosParallel:
    def test_matches_serial(self):
        specs = [get_scenario(1), get_scenario(2)]
        with activate_metrics(Metrics()), activate_cache(ContentCache()):
            serial = run_scenarios(specs, 10.0, METHODS, workers=1, **KW)
        with activate_metrics(Metrics()), activate_cache(ContentCache()):
            parallel = run_scenarios(
                specs, 10.0, METHODS, workers=2, backend="process", **KW
            )
        assert sorted(serial) == sorted(parallel) == [1, 2]
        for sid in serial:
            for m in METHODS:
                s, p = serial[sid].evaluations[m], parallel[sid].evaluations[m]
                assert s.total_distance == p.total_distance
                assert s.stable_link_ratio == p.stable_link_ratio
                assert s.globally_connected == p.globally_connected
