"""Deterministic per-task seeding for the parallel execution engine.

Parallel fan-out must not change results: a task has to see the same
random state whether it runs inline, on a thread, or in a worker
process, and regardless of which worker picks it up.  The engine
therefore derives one seed per *task index* from the run's root seed
with a keyed hash - stable across processes, Python versions and
``PYTHONHASHSEED`` - and installs it into the global ``random`` and
``numpy.random`` states around the task body, restoring the previous
state afterwards so serial callers are not perturbed.

Library code that wants task-local randomness without touching global
state can instead call :func:`task_rng` for a seeded
``numpy.random.Generator``.
"""

from __future__ import annotations

import hashlib
import random
from contextlib import contextmanager
from typing import Iterator

import numpy as np

__all__ = ["derive_seed", "seeded", "task_rng"]

_SEED_BITS = 64


def derive_seed(root_seed: int, index: int) -> int:
    """A 64-bit seed for task ``index`` of a run rooted at ``root_seed``.

    Uses BLAKE2b over the decimal rendering of both integers, so the
    mapping is identical in every process and on every platform (unlike
    ``hash()``, which is salted per interpreter).
    """
    digest = hashlib.blake2b(
        f"repro.exec:{int(root_seed)}:{int(index)}".encode("ascii"),
        digest_size=_SEED_BITS // 8,
    ).digest()
    return int.from_bytes(digest, "big")


def task_rng(root_seed: int, index: int) -> np.random.Generator:
    """A numpy Generator seeded deterministically for one task."""
    return np.random.default_rng(derive_seed(root_seed, index))


@contextmanager
def seeded(seed: int) -> Iterator[int]:
    """Run a block under deterministic global random state.

    Seeds both ``random`` and the legacy ``numpy.random`` global state
    (the two ambient sources library code could reach for), yields the
    seed, and restores the previous states on exit.
    """
    py_state = random.getstate()
    np_state = np.random.get_state()
    random.seed(seed)
    np.random.seed(seed % (2**32))
    try:
        yield seed
    finally:
        random.setstate(py_state)
        np.random.set_state(np_state)
