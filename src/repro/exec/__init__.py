"""Parallel experiment execution engine and content-addressed caching.

Two cooperating pieces:

* :class:`ParallelMap` (:mod:`repro.exec.parallel`) - a deterministic
  ``map`` over ``serial`` / ``thread`` / ``process`` backends with
  chunked fan-out, per-task derived seeds, per-task timeouts, bounded
  retries, graceful degradation to serial when a pool cannot be built,
  and merge-back of per-worker :mod:`repro.obs` spans and metrics.
* :class:`ContentCache` (:mod:`repro.exec.cache`) - an in-memory LRU
  with an optional on-disk store, keyed by :func:`stable_hash` content
  addresses.  The harmonic disk-map pipeline uses it to compute the
  mission-independent M2 embedding once per target region and reuse it
  across scenarios, sweep points and rotation-search probes.

Determinism contract: for a pure task function, ``ParallelMap.map``
returns identical results for any backend and any worker count, and
cached results are identical to freshly computed ones - the experiment
harness asserts byte-identical sweep payloads for ``workers=1`` vs
``workers=4`` and for cache-cold vs cache-warm runs.
"""

from repro.exec.cache import (
    ContentCache,
    DiskStore,
    LRUCache,
    activate_cache,
    disk_backed_cache,
    get_cache,
    set_cache,
    stable_hash,
)
from repro.exec.parallel import (
    BACKENDS,
    ParallelMap,
    parallel_map,
    resolve_workers,
)
from repro.exec.seeding import derive_seed, seeded, task_rng

__all__ = [
    "BACKENDS",
    "ContentCache",
    "DiskStore",
    "LRUCache",
    "ParallelMap",
    "activate_cache",
    "derive_seed",
    "disk_backed_cache",
    "get_cache",
    "parallel_map",
    "resolve_workers",
    "seeded",
    "set_cache",
    "stable_hash",
    "task_rng",
]
