"""Distributed isolated-subgroup detection (paper Sec. III-D1).

"A boundary vertex of T compares the mapped positions of its one-range
neighbors with itself and initiates a packet with a counter set to zero
to its one-range neighbors with communication links still preserved in
M2.  ...  When a vertex receives a packet from a boundary vertex that
is further away from its current nearest boundary vertex, it stops
forwarding this packet.  Otherwise, the vertex updates the counter and
record the number."

The protocol is a distributed BFS from the boundary set over the
*preserved-link* topology: after quiescence every reached vertex knows
its hop distance to the nearest boundary vertex, and vertices that
never received a packet know they belong to an isolated subgroup.  The
centralized oracle is :func:`repro.network.graphs.bfs_hops`.
"""

from __future__ import annotations

from repro.distributed.runtime import Node, NodeApi, SyncNetwork

__all__ = ["SubgroupDetectionNode", "run_subgroup_detection"]


class SubgroupDetectionNode(Node):
    """Participant in the boundary-flood isolation check.

    Parameters
    ----------
    node_id : int
    is_boundary : bool
        Whether this robot lies on the boundary loop of ``T``.
    """

    def __init__(self, node_id: int, is_boundary: bool) -> None:
        super().__init__(node_id)
        self.state["hops"] = 0 if is_boundary else None
        self.state["is_boundary"] = bool(is_boundary)

    def on_start(self, api: NodeApi) -> None:
        if self.state["is_boundary"]:
            api.broadcast("bfs", {"hops": 1})

    def on_round(self, api: NodeApi, inbox) -> None:
        best = None
        for msg in inbox:
            if msg.kind != "bfs":
                continue
            hops = int(msg.payload["hops"])
            if best is None or hops < best:
                best = hops
        if best is None:
            return
        current = self.state["hops"]
        if current is not None and current <= best:
            return  # packet from a boundary vertex further than the known one
        self.state["hops"] = best
        api.broadcast("bfs", {"hops": best + 1})

    @property
    def reached(self) -> bool:
        return self.state["hops"] is not None


def run_subgroup_detection(
    boundary_ids, preserved_adjacency, max_rounds: int | None = None
) -> tuple[list[int], list[int | None]]:
    """Detect robots with no preserved path to the boundary.

    Parameters
    ----------
    boundary_ids : iterable of int
        Robot indices on the boundary loop of ``T``.
    preserved_adjacency : sequence of sequences
        Adjacency over links that survive the planned motion.
    max_rounds : int, optional

    Returns
    -------
    (isolated, hops)
        ``isolated`` - sorted indices the flood never reached;
        ``hops`` - per-robot hop distance to the boundary (None when
        isolated).
    """
    n = len(preserved_adjacency)
    boundary = {int(b) for b in boundary_ids}
    nodes = [SubgroupDetectionNode(i, i in boundary) for i in range(n)]
    net = SyncNetwork(nodes, preserved_adjacency)
    net.run(max_rounds=max_rounds or (2 * n + 4))
    hops = [node.state["hops"] for node in nodes]
    isolated = sorted(i for i, h in enumerate(hops) if h is None)
    return isolated, hops
