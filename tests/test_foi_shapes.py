"""Tests for the scenario shape library (areas and structure per the paper)."""

import numpy as np
import pytest

from repro.foi import (
    M1_AREA,
    SCENARIO_AREAS,
    flower_polygon,
    m1_base,
    m1_scenario6,
    m1_scenario7,
    m2_scenario1,
    m2_scenario2,
    m2_scenario3,
    m2_scenario4,
    m2_scenario5,
    m2_scenario6,
    m2_scenario7,
    radial_blob,
    regular_polygon,
    rounded_rectangle,
    unit_disk_polygon,
)

PAPER_AREAS = {
    m1_base: M1_AREA,
    m2_scenario1: SCENARIO_AREAS[1],
    m2_scenario2: SCENARIO_AREAS[2],
    m2_scenario3: SCENARIO_AREAS[3],
    m2_scenario4: SCENARIO_AREAS[4],
    m2_scenario5: SCENARIO_AREAS[5],
    m2_scenario6: SCENARIO_AREAS[6],
    m2_scenario7: SCENARIO_AREAS[7],
}


class TestPaperAreas:
    @pytest.mark.parametrize("builder", list(PAPER_AREAS), ids=lambda b: b.__name__)
    def test_free_area_matches_paper(self, builder):
        foi = builder()
        assert foi.area == pytest.approx(PAPER_AREAS[builder], rel=1e-6)

    def test_m1_quoted_value(self):
        # Sec. IV: "The current FoI M1 ... has size 308,261 m^2".
        assert m1_base().area == pytest.approx(308_261.0)


class TestHoleStructure:
    def test_scenario_1_2_no_holes(self):
        assert not m2_scenario1().has_holes
        assert not m2_scenario2().has_holes

    def test_scenario_3_has_concave_flower(self):
        foi = m2_scenario3()
        assert len(foi.holes) == 1
        assert not foi.holes[0].is_convex  # the flower pond is concave

    def test_scenario_4_has_convex_hole(self):
        foi = m2_scenario4()
        assert len(foi.holes) == 1
        assert foi.holes[0].is_convex

    def test_scenario_5_multiple_small_holes(self):
        foi = m2_scenario5()
        assert len(foi.holes) >= 3
        assert all(h.area < 0.05 * foi.outer.area for h in foi.holes)

    def test_hole_to_hole_scenarios(self):
        assert m1_scenario6().has_holes and m2_scenario6().has_holes
        assert m1_scenario7().has_holes and m2_scenario7().has_holes
        assert len(m1_scenario7().holes) == 2

    def test_scenario2_is_slim(self):
        # Slim: bounding box strongly anisotropic.
        xmin, ymin, xmax, ymax = m2_scenario2().bounds
        aspect = (xmax - xmin) / (ymax - ymin)
        assert aspect > 2.5


class TestDeterminism:
    @pytest.mark.parametrize("builder", list(PAPER_AREAS), ids=lambda b: b.__name__)
    def test_builders_deterministic(self, builder):
        a = builder()
        b = builder()
        assert np.array_equal(a.outer.vertices, b.outer.vertices)
        assert len(a.holes) == len(b.holes)


class TestPrimitives:
    def test_radial_blob_valid(self):
        blob = radial_blob({2: (0.1, 0.0), 3: (0.05, 0.05)})
        assert blob.is_simple()
        assert blob.area > 0

    def test_flower_petal_count_concavity(self):
        flower = flower_polygon(petals=5, petal_depth=0.4)
        assert not flower.is_convex
        assert flower.is_simple()

    def test_rounded_rectangle_bounds(self):
        rect = rounded_rectangle(4.0, 2.0)
        xmin, ymin, xmax, ymax = rect.bounds
        assert xmax - xmin == pytest.approx(4.0, abs=1e-9)
        assert ymax - ymin == pytest.approx(2.0, abs=1e-9)
        assert rect.area < 8.0  # corners shaved off

    def test_regular_polygon(self):
        hexagon = regular_polygon(6, radius=2.0)
        assert len(hexagon) == 6
        assert hexagon.is_convex

    def test_unit_disk_polygon_area(self):
        disk = unit_disk_polygon(samples=256)
        assert disk.area == pytest.approx(np.pi, rel=1e-3)
