"""A3 - ablation: the global-connectivity repair on vs off.

With repair disabled, the raw harmonic-map targets can isolate robots
when the FoI shapes differ strongly (the failure mode Sec. III-D1
exists to fix).  This ablation plans scenario 2 (blob -> slim) with and
without repair and reports the isolated-robot count of the raw plan
versus the guarantee of the repaired plan.
"""

import numpy as np

from repro.experiments import format_table, get_scenario
from repro.harmonic import InducedMap, compute_disk_map, hierarchical_angle_search
from repro.marching import repair_targets
from repro.mesh import triangulate_foi
from repro.network import (
    LinkTable,
    adjacency_from_edges,
    bfs_hops,
    extract_triangulation,
)
from repro.network.links import links_alive
from repro.robots import RadioSpec, Swarm


def _raw_targets(scenario_id=2, separation=60.0):
    spec = get_scenario(scenario_id)
    radio = RadioSpec.from_comm_range(spec.comm_range)
    m1, m2 = spec.build(separation_factor=separation)
    swarm = Swarm.deploy_lattice(m1, spec.robot_count, radio)
    links = LinkTable.from_graph(swarm.communication_graph())
    t_mesh, vmap = extract_triangulation(swarm.positions, spec.comm_range)
    anchors = [int(vmap[v]) for v in t_mesh.outer_boundary_loop]
    dm_t = compute_disk_map(t_mesh)
    induced = InducedMap(compute_disk_map(triangulate_foi(m2, target_points=320).mesh))
    disk = dm_t.robot_disk_positions

    def objective(angle):
        targets = induced.map_points(disk, rotation=angle)
        return float(links_alive(links.links, targets, spec.comm_range).sum())

    best = hierarchical_angle_search(objective, depth=4)
    q = induced.map_points(disk, rotation=best.angle)
    return swarm.positions, q, links, anchors, spec.comm_range


def _isolated_count(p, q, links, anchors, rc):
    alive = links_alive(links.links, q, rc) & links_alive(links.links, p, rc)
    adj = adjacency_from_edges(len(p), links.links[alive])
    hops = bfs_hops(adj, anchors)
    return int((hops < 0).sum())


def test_ablation_repair(benchmark):
    p, q_raw, links, anchors, rc = benchmark.pedantic(
        _raw_targets, rounds=1, iterations=1
    )
    raw_isolated = _isolated_count(p, q_raw, links, anchors, rc)
    q_fixed, info = repair_targets(p, q_raw, rc, anchors, links=links.links)
    fixed_isolated = _isolated_count(p, q_fixed, links, anchors, rc)
    extra = float(
        np.hypot(*(q_fixed - p).T).sum() - np.hypot(*(q_raw - p).T).sum()
    )
    print("\nAblation A3 - connectivity repair (scenario 2, blob -> slim):")
    print(
        format_table(
            ["variant", "isolated robots", "escorts", "extra distance"],
            [
                ["repair off", raw_isolated, 0, "0.0 m"],
                ["repair on", fixed_isolated, info.escort_count, f"{extra:+.1f} m"],
            ],
        )
    )
    # The guarantee: repair always ends with zero isolated robots.
    assert fixed_isolated == 0
    # And the repaired plan never does worse than the raw one.
    assert fixed_isolated <= raw_isolated
