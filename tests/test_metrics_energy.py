"""Tests for the energy/link-churn model."""

import numpy as np
import pytest

from repro.metrics import EnergyModel, link_churn, transition_energy
from repro.robots import SwarmTrajectory, TimedPath, straight_transition


def chain(n, spacing=1.0):
    return np.column_stack([np.arange(n) * spacing, np.zeros(n)])


class TestLinkChurn:
    def test_static_swarm_no_events(self):
        pos = chain(4)
        traj = straight_transition(pos, pos)
        report = link_churn(traj, 1.5)
        assert report.pairing_events == 0
        assert report.breaking_events == 0
        assert report.initial_links == report.final_links == 3
        assert report.stable_links == 3

    def test_break_only(self):
        pos = chain(2)
        target = pos.copy()
        target[1] += [10.0, 0.0]
        traj = straight_transition(pos, target)
        report = link_churn(traj, 1.5)
        assert report.breaking_events == 1
        assert report.pairing_events == 0
        assert report.final_links == 0

    def test_new_pairing(self):
        pos = np.array([[0.0, 0.0], [10.0, 0.0]])
        target = np.array([[0.0, 0.0], [1.0, 0.0]])
        traj = straight_transition(pos, target)
        report = link_churn(traj, 1.5)
        assert report.pairing_events == 1
        assert report.breaking_events == 0
        assert report.initial_links == 0

    def test_re_pairing_counted_twice(self):
        """Break + re-pair = one breaking and one pairing event."""
        paths = [
            TimedPath.constant_speed([[0, 0], [0, 0]], 0.0, 1.0),
            TimedPath.constant_speed([[1, 0], [50, 0], [1, 0]], 0.0, 1.0),
        ]
        traj = SwarmTrajectory(paths, 0.0, 1.0)
        report = link_churn(traj, 1.5)
        assert report.breaking_events == 1
        assert report.pairing_events == 1
        assert report.stable_links == 0
        assert report.churn == 2

    def test_new_pairings_required_red_edges(self):
        """Fig. 2 semantics: required pairings = final minus stable links."""
        pos = chain(3)
        target = pos.copy()
        target[2] += [10.0, 0.0]  # link (1,2) breaks; no new link forms
        traj = straight_transition(pos, target)
        report = link_churn(traj, 1.5)
        assert report.new_pairings_required == report.final_links - report.stable_links
        assert report.new_pairings_required == 0

    def test_re_paired_link_counts_as_new(self):
        paths = [
            TimedPath.constant_speed([[0, 0], [0, 0]], 0.0, 1.0),
            TimedPath.constant_speed([[1, 0], [50, 0], [1, 0]], 0.0, 1.0),
        ]
        traj = SwarmTrajectory(paths, 0.0, 1.0)
        report = link_churn(traj, 1.5)
        # The pair ends connected but was not maintained: one re-pairing.
        assert report.new_pairings_required == 1

    def test_stable_links_match_linktable(self):
        from repro.network import LinkTable
        from repro.metrics import stable_link_report

        rng = np.random.default_rng(3)
        pos = rng.uniform(0, 5, (8, 2))
        target = pos + rng.normal(0, 2, (8, 2))
        traj = straight_transition(pos, target)
        churn = link_churn(traj, 2.5)
        links = LinkTable.from_positions(pos, 2.5)
        rep = stable_link_report(links, traj)
        assert churn.stable_links == rep.stable_links
        assert churn.initial_links == rep.initial_links


class TestEnergy:
    def test_movement_energy(self):
        traj = straight_transition([[0, 0]], [[100.0, 0.0]])
        model = EnergyModel(move_cost_per_meter=2.0, pairing_cost=0.0)
        report = transition_energy(traj, 1.0, model)
        assert report.movement == pytest.approx(200.0)
        assert report.total == pytest.approx(200.0)

    def test_pairing_energy(self):
        pos = np.array([[0.0, 0.0], [10.0, 0.0]])
        target = np.array([[0.0, 0.0], [1.0, 0.0]])
        traj = straight_transition(pos, target)
        model = EnergyModel(move_cost_per_meter=0.0, pairing_cost=25.0)
        report = transition_energy(traj, 1.5, model)
        assert report.pairing == pytest.approx(25.0)

    def test_defaults_positive(self):
        model = EnergyModel()
        assert model.move_cost_per_meter > 0
        assert model.pairing_cost > 0

    def test_link_preserving_plan_cheaper_on_pairing(self):
        """The paper's energy argument: scrambling plans pay for
        re-pairing.  A rigid shift pays zero pairing energy; a swap of
        two robots pays for the links both tear and re-form."""
        pos = chain(4)
        rigid = straight_transition(pos, pos + [100.0, 0.0])
        swapped_targets = pos + [100.0, 0.0]
        swapped_targets[[0, 3]] = swapped_targets[[3, 0]]
        swapped = straight_transition(pos, swapped_targets)
        model = EnergyModel(move_cost_per_meter=0.0, pairing_cost=1.0)
        e_rigid = transition_energy(rigid, 1.5, model)
        e_swapped = transition_energy(swapped, 1.5, model)
        assert e_rigid.pairing == 0.0
        assert e_swapped.pairing > 0.0
