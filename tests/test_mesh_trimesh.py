"""Tests for the TriMesh structure and boundary-loop extraction."""

import numpy as np
import pytest

from repro.errors import MeshError
from repro.mesh import TriMesh, edges_of_triangles


def square_two_triangles():
    verts = [(0, 0), (1, 0), (1, 1), (0, 1)]
    tris = [(0, 1, 2), (0, 2, 3)]
    return TriMesh(verts, tris)


def annulus_mesh():
    """An 8-vertex square ring (outer square + inner square hole)."""
    outer = [(0, 0), (4, 0), (4, 4), (0, 4)]
    inner = [(1, 1), (3, 1), (3, 3), (1, 3)]
    verts = outer + inner
    tris = [
        (0, 1, 4), (1, 5, 4), (1, 2, 5), (2, 6, 5),
        (2, 3, 6), (3, 7, 6), (3, 0, 7), (0, 4, 7),
    ]
    return TriMesh(verts, tris)


class TestConstruction:
    def test_empty_triangles_allowed(self):
        mesh = TriMesh([(0, 0), (1, 0)], np.zeros((0, 3), dtype=int))
        assert mesh.triangle_count == 0

    def test_bad_indices(self):
        with pytest.raises(MeshError):
            TriMesh([(0, 0), (1, 0), (0, 1)], [(0, 1, 3)])

    def test_repeated_vertex_in_triangle(self):
        with pytest.raises(MeshError):
            TriMesh([(0, 0), (1, 0), (0, 1)], [(0, 0, 1)])

    def test_degenerate_triangle(self):
        with pytest.raises(MeshError):
            TriMesh([(0, 0), (1, 1), (2, 2)], [(0, 1, 2)])

    def test_orientation_normalised_ccw(self):
        mesh = TriMesh([(0, 0), (1, 0), (0, 1)], [(0, 2, 1)])  # given CW
        a, b, c = mesh.vertices[mesh.triangles[0]]
        cross = (b[0] - a[0]) * (c[1] - a[1]) - (b[1] - a[1]) * (c[0] - a[0])
        assert cross > 0

    def test_arrays_read_only(self):
        mesh = square_two_triangles()
        with pytest.raises(ValueError):
            mesh.vertices[0, 0] = 9


class TestEdgesAdjacency:
    def test_edge_count(self):
        mesh = square_two_triangles()
        assert len(mesh.edges) == 5  # 4 sides + 1 diagonal

    def test_edges_sorted_unique(self):
        mesh = square_two_triangles()
        e = mesh.edges
        assert np.all(e[:, 0] < e[:, 1])
        assert len(np.unique(e, axis=0)) == len(e)

    def test_neighbors(self):
        mesh = square_two_triangles()
        assert mesh.neighbors(0) == [1, 2, 3]
        assert mesh.degree(1) == 2

    def test_edge_triangles(self):
        mesh = square_two_triangles()
        assert len(mesh.edge_triangles[(0, 2)]) == 2  # the diagonal
        assert len(mesh.edge_triangles[(0, 1)]) == 1

    def test_vertex_triangles(self):
        mesh = square_two_triangles()
        assert sorted(mesh.vertex_triangles[0]) == [0, 1]
        assert mesh.vertex_triangles[1] == [0]

    def test_edges_of_triangles_function(self):
        e = edges_of_triangles(np.array([[0, 1, 2], [1, 2, 3]]))
        assert len(e) == 5


class TestBoundary:
    def test_square_boundary(self):
        mesh = square_two_triangles()
        assert sorted(mesh.boundary_edges) == [(0, 1), (0, 3), (1, 2), (2, 3)]
        assert mesh.boundary_vertices.tolist() == [0, 1, 2, 3]
        assert len(mesh.interior_vertices) == 0

    def test_single_loop(self):
        mesh = square_two_triangles()
        loops = mesh.boundary_loops
        assert len(loops) == 1
        assert sorted(loops[0]) == [0, 1, 2, 3]

    def test_outer_loop_ccw(self):
        mesh = square_two_triangles()
        loop = mesh.outer_boundary_loop
        pts = mesh.vertices[np.array(loop)]
        x, y = pts[:, 0], pts[:, 1]
        area = 0.5 * np.sum(x * np.roll(y, -1) - np.roll(x, -1) * y)
        assert area > 0

    def test_annulus_two_loops(self):
        mesh = annulus_mesh()
        assert len(mesh.boundary_loops) == 2
        outer = set(mesh.outer_boundary_loop)
        assert outer == {0, 1, 2, 3}
        assert set(mesh.hole_loops[0]) == {4, 5, 6, 7}


class TestTopology:
    def test_disk_euler(self):
        mesh = square_two_triangles()
        assert mesh.euler_characteristic == 1
        assert mesh.is_topological_disk()

    def test_annulus_not_disk(self):
        mesh = annulus_mesh()
        assert mesh.euler_characteristic == 0
        assert not mesh.is_topological_disk()

    def test_connectivity(self):
        mesh = square_two_triangles()
        assert mesh.is_connected()

    def test_disconnected_detected(self):
        verts = [(0, 0), (1, 0), (0, 1), (10, 10), (11, 10), (10, 11)]
        mesh = TriMesh(verts, [(0, 1, 2), (3, 4, 5)])
        assert not mesh.is_connected()


class TestDerivedMeshes:
    def test_with_vertices(self):
        mesh = square_two_triangles()
        moved = mesh.with_vertices(mesh.vertices + 5.0)
        assert np.allclose(moved.vertices, mesh.vertices + 5.0)
        assert np.array_equal(moved.triangles, mesh.triangles)

    def test_with_vertices_count_mismatch(self):
        mesh = square_two_triangles()
        with pytest.raises(MeshError):
            mesh.with_vertices(np.zeros((3, 2)))

    def test_submesh(self):
        mesh = square_two_triangles()
        sub, vmap = mesh.submesh([0])
        assert sub.triangle_count == 1
        assert sub.vertex_count == 3
        assert np.allclose(sub.vertices, mesh.vertices[vmap])

    def test_largest_component(self):
        verts = [(0, 0), (1, 0), (0, 1), (10, 10), (11, 10), (10, 11), (11, 11)]
        tris = [(0, 1, 2), (3, 4, 5), (4, 6, 5)]
        mesh = TriMesh(verts, tris)
        big, vmap = mesh.largest_component()
        assert big.triangle_count == 2
        assert set(vmap.tolist()) == {3, 4, 5, 6}

    def test_edge_lengths_and_areas(self):
        mesh = square_two_triangles()
        assert mesh.triangle_areas().sum() == pytest.approx(1.0)
        lengths = mesh.edge_lengths()
        assert lengths.max() == pytest.approx(np.sqrt(2))
        assert lengths.min() == pytest.approx(1.0)

    def test_pinched_boundary_raises(self):
        # Two triangles sharing only vertex 2: vertex 2 has 4 boundary edges.
        verts = [(0, 0), (1, 0), (0.5, 0.5), (0, 1), (1, 1)]
        mesh = TriMesh(verts, [(0, 1, 2), (2, 3, 4)])
        with pytest.raises(MeshError):
            _ = mesh.boundary_loops
