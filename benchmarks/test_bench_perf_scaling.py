"""Planner wall-clock scaling with swarm size (ours).

Plans scenario-1-style transitions at 49/100/169 robots and reports the
end-to-end planning time, backing the complexity discussion: every
stage is near-linear or ``O(n^2)`` with small constants at the paper's
144-robot scale.
"""

import time

from repro.coverage import LloydConfig
from repro.experiments import format_table
from repro.foi import m1_base, m2_scenario1
from repro.marching import MarchingConfig, MarchingPlanner
from repro.robots import RadioSpec, Swarm

CFG = MarchingConfig(
    foi_target_points=320, lloyd=LloydConfig(grid_target=1400, max_iterations=40)
)
# 49 robots would need a lattice pitch above the 80 m range on M1.
SIZES = (64, 100, 169)


def _run():
    radio = RadioSpec.from_comm_range(80.0)
    m1 = m1_base()
    m2 = m2_scenario1()
    m2 = m2.translated(m1.centroid - m2.centroid + [1600.0, 0.0])
    timings = []
    for n in SIZES:
        swarm = Swarm.deploy_lattice(m1, n, radio)
        t0 = time.perf_counter()
        result = MarchingPlanner(CFG).plan(swarm, m2)
        dt = time.perf_counter() - t0
        timings.append((n, dt, result.total_distance))
    return timings


def test_perf_planner_scaling(benchmark):
    timings = benchmark.pedantic(_run, rounds=1, iterations=1)
    print("\nPlanner scaling (scenario-1 shapes, 20x r_c separation):")
    print(format_table(
        ["robots", "plan time", "D"],
        [[n, f"{dt:.2f} s", f"{d / 1000:.0f} km"] for n, dt, d in timings],
    ))
    # Sanity: planning 169 robots stays within interactive budgets.
    assert timings[-1][1] < 60.0
