"""Rotation-angle search for the modified harmonic map (Sec. III-B).

Overlaying two unit disks leaves one rotational degree of freedom.  The
paper picks it with a hierarchical interval search of fixed depth
("each mobile robot applies a simple binary search method ... with a
pre-defined search depth", set to 4 in their simulations): at every
level the current interval is halved and the half whose midpoint angle
scores better is kept.

Method (a) scores an angle by the number of stable links it induces;
method (b) by the total moving distance (Sec. III-D2).  Both are
exposed through a generic objective callable, plus an exhaustive
sampler used by the ablation benchmark to measure how close depth-4
gets to the true optimum.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.obs import get_metrics, span

__all__ = ["AngleSearchResult", "hierarchical_angle_search", "exhaustive_angle_search"]

TWO_PI = 2.0 * np.pi


@dataclass(frozen=True)
class AngleSearchResult:
    """Outcome of a rotation-angle search.

    Attributes
    ----------
    angle : float
        The selected rotation (radians, in ``[0, 2*pi)``).
    score : float
        Objective value at ``angle`` (already sign-normalised so larger
        is better regardless of the maximize flag).
    evaluations : int
        Number of objective calls spent.
    """

    angle: float
    score: float
    evaluations: int


def hierarchical_angle_search(
    objective: Callable[[float], float],
    depth: int = 4,
    maximize: bool = True,
    initial_samples: int = 4,
) -> AngleSearchResult:
    """The paper's fixed-depth interval-halving search over ``[0, 2*pi)``.

    Parameters
    ----------
    objective : callable(angle) -> float
    depth : int
        Number of halving levels (paper uses 4).
    maximize : bool
        True for method (a) (stable links), False for method (b)
        (moving distance).
    initial_samples : int
        Coarse seed angles evaluated up front to pick the starting
        interval; the paper's robots seed implicitly by flooding all
        candidates, and 4 seeds keep the behaviour deterministic while
        avoiding a pathological first halving.

    Returns
    -------
    AngleSearchResult
        The budget is exact: ``initial_samples`` seed evaluations, two
        probes per halving level, and one final evaluation of the last
        bracket's centre - ``initial_samples + 2*depth + 1`` in total.
    """
    if depth < 0:
        raise ValueError("depth must be non-negative")
    sign = 1.0 if maximize else -1.0
    evaluations = 0

    def score(angle: float) -> float:
        nonlocal evaluations
        evaluations += 1
        return sign * float(objective(angle % TWO_PI))

    with span(
        "harmonic.rotation_search", depth=depth, initial_samples=initial_samples
    ) as sp:
        best_angle = 0.0
        best_score = -np.inf
        width = TWO_PI / max(1, initial_samples)
        seeds = [(i + 0.5) * width for i in range(max(1, initial_samples))]
        for a in seeds:
            s = score(a)
            if s > best_score:
                best_angle, best_score = a, s
        lo = best_angle - width / 2.0
        hi = best_angle + width / 2.0

        for _ in range(depth):
            mid = 0.5 * (lo + hi)
            left_mid = 0.5 * (lo + mid)
            right_mid = 0.5 * (mid + hi)
            s_left = score(left_mid)
            s_right = score(right_mid)
            if s_left >= s_right:
                hi = mid
                if s_left > best_score:
                    best_angle, best_score = left_mid, s_left
            else:
                lo = mid
                if s_right > best_score:
                    best_angle, best_score = right_mid, s_right
        # Score the centre of the final bracket before returning.  The
        # halving rule above happens to land the centre on the last
        # winning probe, but only up to floating-point associativity and
        # only while that exact tie-break is in force; scoring it makes
        # the bracket centre unconditionally part of the candidate set
        # and pins the budget at ``initial_samples + 2*depth + 1``.
        final_mid = 0.5 * (lo + hi)
        s_mid = score(final_mid)
        if s_mid > best_score:
            best_angle, best_score = final_mid, s_mid
        result = AngleSearchResult(
            angle=best_angle % TWO_PI, score=best_score, evaluations=evaluations
        )
        sp.set_attributes(
            angle=result.angle, score=result.score, evaluations=evaluations
        )
    get_metrics().counter("rotation.objective_evaluations").inc(evaluations)
    return result


def exhaustive_angle_search(
    objective: Callable[[float], float],
    samples: int = 360,
    maximize: bool = True,
) -> AngleSearchResult:
    """Dense sampling of the rotation objective (ablation oracle)."""
    if samples < 1:
        raise ValueError("samples must be positive")
    sign = 1.0 if maximize else -1.0
    with span("harmonic.rotation_exhaustive", samples=samples) as sp:
        angles = np.arange(samples) * (TWO_PI / samples)
        scores = np.array([sign * float(objective(a)) for a in angles])
        best = int(np.argmax(scores))
        sp.set("angle", float(angles[best]))
    get_metrics().counter("rotation.objective_evaluations").inc(samples)
    return AngleSearchResult(
        angle=float(angles[best]), score=float(scores[best]), evaluations=samples
    )
