"""Service-side mission jobs: POST /v1/mission, SSE streaming, resume.

The contract under test: a fixed-seed mission run through a sharded
fleet produces a result document byte-identical to the in-process
:class:`~repro.missions.MissionRunner` run, its SSE stream delivers
``epoch``/``plan_diff`` events in order, and the client's
``iter_events`` survives a mid-stream disconnect by resuming from the
last-seen sequence number (the server honours ``?since=``).
"""

import http.client
import json

import pytest

from repro.errors import ServiceError
from repro.io import dumps_canonical
from repro.missions import MissionConfig, MissionRunner, MissionSpec
from repro.service import PlanningService, ServiceClient
from repro.service.jobs import job_id_for, normalize_mission_request
from repro.service.server import _since_param

FAST = MissionConfig(
    foi_target_points=100,
    grid_target=300,
    lloyd_max_iterations=6,
    resolution=4,
)

SPEC = MissionSpec(family="corridor", seed=0, epochs=2, motion="drift")


@pytest.fixture(scope="module")
def local_doc():
    return MissionRunner(SPEC, FAST).run()


@pytest.fixture(scope="module")
def service():
    svc = PlanningService(
        port=0, service_workers=2, dispatchers=2, capacity=16
    )
    svc.events_poll_s = 0.01
    with svc:
        yield svc


@pytest.fixture
def client(service):
    return ServiceClient(port=service.port, timeout=120.0, retries=3)


class TestNormalize:
    def test_round_trips_spec_config_faults(self):
        request, priority = normalize_mission_request({
            "spec": SPEC.to_dict(),
            "config": FAST.to_dict(),
            "priority": 2,
        })
        assert priority == 2
        assert request["kind"] == "mission"
        assert request["spec"] == SPEC.to_dict()
        assert request["config"] == FAST.to_dict()
        assert request["faults"] is None

    def test_requires_spec(self):
        with pytest.raises(ServiceError, match="needs a 'spec'"):
            normalize_mission_request({"config": {}})

    def test_rejects_unknown_fields(self):
        with pytest.raises(ServiceError):
            normalize_mission_request({"spec": SPEC.to_dict(), "oops": 1})

    def test_rejects_bad_spec(self):
        with pytest.raises(ServiceError, match="invalid mission request"):
            normalize_mission_request({
                "spec": {"family": "corridor", "motion": "teleport"}
            })

    def test_mission_ids_disjoint_from_plan_ids(self):
        request, _ = normalize_mission_request({"spec": SPEC.to_dict()})
        stripped = {k: v for k, v in request.items() if k != "kind"}
        assert job_id_for(request) != job_id_for(stripped)


class TestSinceParam:
    @pytest.mark.parametrize("query,expected", [
        ("", 0),
        ("since=5", 5),
        ("since=0", 0),
        ("since=-3", 0),
        ("since=nope", 0),
        ("foo=1&since=7&bar=2", 7),
    ])
    def test_parse(self, query, expected):
        assert _since_param(query) == expected


class TestMissionJobs:
    def test_sharded_fleet_is_byte_identical_to_in_process(
        self, service, client, local_doc
    ):
        events = []
        doc = client.run_mission(
            SPEC, config=FAST, on_event=events.append
        )
        assert dumps_canonical(doc) == dumps_canonical(local_doc)

        kinds = [e["kind"] for e in events]
        # Ordered epoch stream: plan_diff precedes its epoch, epochs
        # ascend, and the stream terminates.
        assert kinds.count("epoch") == SPEC.epochs
        assert kinds.count("plan_diff") == SPEC.epochs
        pairs = [
            (e.get("epoch"), e["kind"])
            for e in events
            if e["kind"] in ("epoch", "plan_diff")
        ]
        assert pairs == [(0, "plan_diff"), (0, "epoch"),
                         (1, "plan_diff"), (1, "epoch")]
        seqs = [e["seq"] for e in events]
        assert seqs == sorted(seqs)
        assert kinds[-1] == "end"

    def test_resubmit_deduplicates(self, service, client, local_doc):
        first = client.submit_mission(SPEC, config=FAST)
        again = client.submit_mission(SPEC, config=FAST)
        assert again["job_id"] == first["job_id"]
        assert again["deduplicated"]
        client.wait(first["job_id"], timeout=120.0)
        assert client.result_bytes(first["job_id"]) == dumps_canonical(
            local_doc
        )

    def test_server_honours_since_cursor(self, service, client):
        sub = client.submit_mission(SPEC, config=FAST)
        client.wait(sub["job_id"], timeout=120.0)
        conn = http.client.HTTPConnection(
            client.host, client.port, timeout=30.0
        )
        try:
            conn.request("GET", f"/v1/jobs/{sub['job_id']}/events?since=3")
            response = conn.getresponse()
            assert response.status == 200
            first_id = None
            while True:
                line = response.readline().decode().strip()
                if line.startswith("id:"):
                    first_id = int(line.partition(":")[2])
                    break
            assert first_id == 3
        finally:
            conn.close()

    def test_client_resumes_after_mid_stream_disconnect(
        self, service, client, local_doc
    ):
        spec = MissionSpec(
            family="corridor", seed=1, epochs=2, motion="drift"
        )
        opens = {"count": 0}
        real_open = client._open_events

        class Chopped:
            """Response wrapper that dies after a few reads."""

            def __init__(self, response, limit):
                self._response = response
                self._limit = limit
                self._reads = 0

            def readline(self):
                self._reads += 1
                if self._limit is not None and self._reads > self._limit:
                    raise OSError("injected mid-stream disconnect")
                return self._response.readline()

            def __getattr__(self, name):
                return getattr(self._response, name)

        def chopped_open(job_id, since, timeout):
            opens["count"] += 1
            conn, response = real_open(job_id, since, timeout)
            limit = 8 if opens["count"] == 1 else None
            return conn, Chopped(response, limit)

        client._open_events = chopped_open
        sub = client.submit_mission(spec, config=FAST)
        events = list(client.iter_events(sub["job_id"], timeout=120.0))
        assert opens["count"] >= 2  # the injected cut forced a reconnect
        seqs = [e["seq"] for e in events]
        assert seqs == sorted(set(seqs))  # no duplicates, no gaps skipped
        assert seqs == list(range(seqs[0], seqs[-1] + 1))
        assert [e["kind"] for e in events][-1] == "end"
        kinds = [e["kind"] for e in events]
        assert kinds.count("epoch") == spec.epochs

    def test_stalled_stream_exhausts_retry_budget(self, service):
        bounded = ServiceClient(
            port=service.port, timeout=30.0, retries=1
        )
        sub = bounded.submit_mission(SPEC, config=FAST)
        bounded.wait(sub["job_id"], timeout=120.0)

        def always_dies(job_id, since, timeout):
            conn, response = ServiceClient._open_events(
                bounded, job_id, since, timeout
            )

            class Dead:
                def readline(self):
                    raise OSError("wire cut")

                def __getattr__(self, name):
                    return getattr(response, name)

            return conn, Dead()

        bounded._open_events = always_dies
        with pytest.raises(ServiceError, match="stalled"):
            list(bounded.iter_events(sub["job_id"], timeout=30.0))

    def test_http_endpoint_rejects_malformed_body(self, service, client):
        conn = http.client.HTTPConnection(
            client.host, client.port, timeout=30.0
        )
        try:
            body = b"{not json"
            conn.request("POST", "/v1/mission", body=body, headers={
                "Content-Type": "application/json",
                "Content-Length": str(len(body)),
            })
            assert conn.getresponse().status == 400
        finally:
            conn.close()

    def test_http_endpoint_rejects_bad_spec(self, service, client):
        conn = http.client.HTTPConnection(
            client.host, client.port, timeout=30.0
        )
        try:
            body = json.dumps({"spec": {"family": "nowhere"}}).encode()
            conn.request("POST", "/v1/mission", body=body, headers={
                "Content-Type": "application/json",
                "Content-Length": str(len(body)),
            })
            response = conn.getresponse()
            assert response.status == 400
            assert b"invalid mission request" in response.read()
        finally:
            conn.close()
