"""Parametric shape library reproducing the paper's FoI models.

The authors evaluate on hand-drawn FoI polygons (Figs. 2-5) whose exact
coordinates are not published; only the shape *class* (blob / slim /
concave / holes), the free area in square metres, the robot count
(144) and the communication range (80 m) are given.  This module
rebuilds each scenario's FoI parametrically and scales it to the exact
published area, which is the substitution documented in DESIGN.md.

All builders are deterministic (fixed harmonic coefficients rather than
random seeds) so experiments are reproducible bit-for-bit.
"""

from __future__ import annotations

import numpy as np

from repro.foi.region import FieldOfInterest
from repro.geometry.polygon import Polygon

__all__ = [
    "radial_blob",
    "ellipse_polygon",
    "rounded_rectangle",
    "flower_polygon",
    "regular_polygon",
    "m1_base",
    "m2_scenario1",
    "ring_with_gap",
    "u_corridor",
    "m2_scenario2",
    "m2_scenario3",
    "m2_scenario4",
    "m2_scenario5",
    "m1_scenario6",
    "m2_scenario6",
    "m1_scenario7",
    "m2_scenario7",
    "unit_disk_polygon",
]

# Area figures quoted in Sec. IV of the paper (square metres).
M1_AREA = 308_261.0
SCENARIO_AREAS = {
    1: 289_745.0,
    2: 173_057.0,
    3: 239_987.0,
    4: 233_342.0,
    5: 253_578.0,
    6: 268_000.0,  # not quoted in the paper; chosen comparable to M1
    7: 244_000.0,  # not quoted in the paper; chosen comparable to M1
}


def radial_blob(
    harmonics: dict[int, tuple[float, float]],
    base_radius: float = 1.0,
    samples: int = 96,
) -> Polygon:
    """A smooth star-shaped polygon ``r(theta) = R * (1 + sum a_k cos + b_k sin)``.

    Parameters
    ----------
    harmonics : mapping ``k -> (a_k, b_k)``
        Fourier coefficients of the radial perturbation.  Keep the
        total perturbation below 1 so the radius stays positive.
    base_radius : float
    samples : int
        Number of boundary vertices.
    """
    theta = np.linspace(0.0, 2.0 * np.pi, samples, endpoint=False)
    r = np.ones_like(theta)
    for k, (a, b) in harmonics.items():
        r += a * np.cos(k * theta) + b * np.sin(k * theta)
    r = np.maximum(r, 0.05) * base_radius
    return Polygon(np.column_stack([r * np.cos(theta), r * np.sin(theta)]))


def ellipse_polygon(rx: float, ry: float, samples: int = 64, center=(0.0, 0.0)) -> Polygon:
    """Axis-aligned ellipse approximated by ``samples`` vertices."""
    theta = np.linspace(0.0, 2.0 * np.pi, samples, endpoint=False)
    cx, cy = center
    return Polygon(
        np.column_stack([cx + rx * np.cos(theta), cy + ry * np.sin(theta)])
    )


def unit_disk_polygon(samples: int = 128) -> Polygon:
    """The unit disk as a polygon (used for disk-embedding figures)."""
    return ellipse_polygon(1.0, 1.0, samples=samples)


def rounded_rectangle(
    width: float, height: float, corner_fraction: float = 0.25, samples_per_corner: int = 8
) -> Polygon:
    """A rectangle with circular-arc corners.

    ``corner_fraction`` is the corner radius as a fraction of the
    smaller side (clipped to 0.49 to keep the shape valid).
    """
    r = min(width, height) * min(max(corner_fraction, 0.0), 0.49)
    hw, hh = width / 2.0, height / 2.0
    centers = [(hw - r, hh - r), (-hw + r, hh - r), (-hw + r, -hh + r), (hw - r, -hh + r)]
    starts = [0.0, np.pi / 2.0, np.pi, 3.0 * np.pi / 2.0]
    pts: list[tuple[float, float]] = []
    for (cx, cy), start in zip(centers, starts):
        for t in np.linspace(start, start + np.pi / 2.0, samples_per_corner):
            pts.append((cx + r * np.cos(t), cy + r * np.sin(t)))
    return Polygon(pts)


def flower_polygon(
    petals: int = 5,
    base_radius: float = 1.0,
    petal_depth: float = 0.4,
    samples: int = 80,
    center=(0.0, 0.0),
) -> Polygon:
    """A flower/star shape ``r = R * (1 + depth * cos(petals * theta))``.

    With ``petal_depth`` around 0.3-0.5 this matches the "flower-shaped
    pond" hole of Fig. 2(d): strongly concave with ``petals`` lobes.
    """
    theta = np.linspace(0.0, 2.0 * np.pi, samples, endpoint=False)
    r = base_radius * (1.0 + petal_depth * np.cos(petals * theta))
    cx, cy = center
    return Polygon(np.column_stack([cx + r * np.cos(theta), cy + r * np.sin(theta)]))


def regular_polygon(sides: int, radius: float = 1.0, center=(0.0, 0.0)) -> Polygon:
    """Regular ``sides``-gon with circumradius ``radius``."""
    theta = np.linspace(0.0, 2.0 * np.pi, sides, endpoint=False)
    cx, cy = center
    return Polygon(
        np.column_stack([cx + radius * np.cos(theta), cy + radius * np.sin(theta)])
    )


# ----------------------------------------------------------------------
# Scenario FoIs.  M1 is shared by scenarios 1-5 (Fig. 2(a)); scenarios 6
# and 7 use their own hole-bearing M1 (Fig. 5).
# ----------------------------------------------------------------------


def m1_base() -> FieldOfInterest:
    """Current FoI M1 of Fig. 2(a): a gently irregular blob, 308,261 m2."""
    blob = radial_blob({2: (0.08, 0.03), 3: (0.05, -0.04), 5: (0.02, 0.02)})
    return FieldOfInterest(
        blob.scaled_to_area(M1_AREA), name="M1 (Fig. 2a, 308261 m2)"
    )


def m2_scenario1() -> FieldOfInterest:
    """Scenario 1 target: non-hole blob of a different outline, 289,745 m2."""
    blob = radial_blob({2: (-0.10, 0.06), 4: (0.07, 0.05), 6: (-0.03, 0.02)})
    return FieldOfInterest(
        blob.scaled_to_area(SCENARIO_AREAS[1]), name="M2 scenario 1 (289745 m2)"
    )


def m2_scenario2() -> FieldOfInterest:
    """Scenario 2 target: slim elongated FoI, 173,057 m2.

    The paper notes the boundary shapes of M1 and this M2 "differ a
    lot", driving up the direct-translation moving distance.
    """
    slim = ellipse_polygon(3.2, 0.8, samples=96)
    return FieldOfInterest(
        slim.scaled_to_area(SCENARIO_AREAS[2]), name="M2 scenario 2 (slim, 173057 m2)"
    )


def m2_scenario3() -> FieldOfInterest:
    """Scenario 3 target (Fig. 2(d)): blob with a concave flower pond, 239,987 m2.

    The outline is markedly elongated and lobed - Fig. 2(d)'s FoI is a
    visibly different blob from M1, not a shrunken copy.
    """
    outer = radial_blob({2: (0.22, -0.10), 3: (0.10, 0.12), 5: (-0.04, 0.03)})
    pond = flower_polygon(petals=5, base_radius=0.30, petal_depth=0.38, center=(0.12, -0.05))
    foi = FieldOfInterest(outer, [pond], name="M2 scenario 3 (flower pond)")
    return foi.scaled_to_area(SCENARIO_AREAS[3])


def m2_scenario4() -> FieldOfInterest:
    """Scenario 4 target: blob with one big convex hole, 233,342 m2."""
    outer = radial_blob({2: (0.05, 0.06), 4: (-0.04, 0.03)})
    hole = ellipse_polygon(0.34, 0.28, samples=40, center=(-0.05, 0.08))
    foi = FieldOfInterest(outer, [hole], name="M2 scenario 4 (big convex hole)")
    return foi.scaled_to_area(SCENARIO_AREAS[4])


def m2_scenario5() -> FieldOfInterest:
    """Scenario 5 target: blob with multiple small holes, 253,578 m2."""
    outer = radial_blob({3: (0.07, 0.02), 5: (0.03, -0.03)})
    holes = [
        ellipse_polygon(0.12, 0.10, samples=24, center=(0.35, 0.25)),
        ellipse_polygon(0.10, 0.12, samples=24, center=(-0.38, 0.18)),
        ellipse_polygon(0.11, 0.11, samples=24, center=(0.05, -0.40)),
        ellipse_polygon(0.09, 0.09, samples=24, center=(-0.15, -0.05)),
    ]
    foi = FieldOfInterest(outer, holes, name="M2 scenario 5 (multiple small holes)")
    return foi.scaled_to_area(SCENARIO_AREAS[5])


def m1_scenario6() -> FieldOfInterest:
    """Scenario 6 current FoI: irregular blob with a central hole (Fig. 5(a))."""
    outer = radial_blob({2: (0.09, 0.00), 3: (-0.05, 0.04)})
    hole = flower_polygon(petals=4, base_radius=0.25, petal_depth=0.3, center=(0.0, 0.05))
    foi = FieldOfInterest(outer, [hole], name="M1 scenario 6 (hole)")
    return foi.scaled_to_area(285_000.0)


def m2_scenario6() -> FieldOfInterest:
    """Scenario 6 target FoI: different outline with an offset hole."""
    outer = radial_blob({2: (-0.07, 0.08), 5: (0.04, 0.02)})
    hole = ellipse_polygon(0.30, 0.22, samples=32, center=(0.22, -0.12))
    foi = FieldOfInterest(outer, [hole], name="M2 scenario 6 (hole)")
    return foi.scaled_to_area(SCENARIO_AREAS[6])


def m1_scenario7() -> FieldOfInterest:
    """Scenario 7 current FoI: elongated blob with two holes (Fig. 5(b))."""
    outer = ellipse_polygon(2.4, 1.3, samples=96)
    holes = [
        ellipse_polygon(0.28, 0.22, samples=24, center=(-0.9, 0.1)),
        ellipse_polygon(0.22, 0.26, samples=24, center=(0.95, -0.15)),
    ]
    foi = FieldOfInterest(outer, holes, name="M1 scenario 7 (two holes)")
    return foi.scaled_to_area(295_000.0)


def u_corridor(width_fraction: float = 0.35, samples_per_side: int = 10) -> FieldOfInterest:
    """A strongly concave U-shaped corridor (stress shape, not in the paper).

    Harmonic maps concentrate distortion at deep concavities; this
    shape stresses the planner's guarantees well beyond the paper's
    blobs.  Unit scale; use ``scaled_to_area`` to size it.
    """
    w = min(max(width_fraction, 0.1), 0.45)
    pts: list[tuple[float, float]] = []
    # Outer boundary of the U (counter-clockwise).
    pts += [(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (1.0 - w, 1.0)]
    pts += [(1.0 - w, w)]
    pts += [(w, w), (w, 1.0), (0.0, 1.0)]
    poly = Polygon(pts)
    return FieldOfInterest(poly, name="U-corridor (stress)")


def ring_with_gap(
    outer_radius: float = 1.0,
    inner_fraction: float = 0.55,
    gap_radians: float = 0.9,
    samples: int = 72,
) -> FieldOfInterest:
    """An almost-annular corridor: a ring opened by a gap (stress shape).

    Topologically a disk (the gap prevents a hole) but metrically close
    to an annulus - the harmonic map must unroll it onto the disk.
    """
    inner = outer_radius * min(max(inner_fraction, 0.2), 0.85)
    half_gap = max(gap_radians, 0.2) / 2.0
    theta = np.linspace(half_gap, 2.0 * np.pi - half_gap, samples)
    outer_arc = np.column_stack(
        [outer_radius * np.cos(theta), outer_radius * np.sin(theta)]
    )
    inner_arc = np.column_stack(
        [inner * np.cos(theta[::-1]), inner * np.sin(theta[::-1])]
    )
    poly = Polygon(np.vstack([outer_arc, inner_arc]))
    return FieldOfInterest(poly, name="ring-with-gap (stress)")


def m2_scenario7() -> FieldOfInterest:
    """Scenario 7 target FoI: concave blob with a flower hole."""
    outer = radial_blob({2: (0.12, -0.05), 3: (0.06, 0.06)})
    hole = flower_polygon(petals=6, base_radius=0.26, petal_depth=0.32, center=(-0.1, 0.1))
    foi = FieldOfInterest(outer, [hole], name="M2 scenario 7 (flower hole)")
    return foi.scaled_to_area(SCENARIO_AREAS[7])
