"""Lloyd's algorithm on a discretised FoI (paper Sec. III-C).

The minor-adjustment phase moves each robot to the (density-weighted)
centroid of its Voronoi region, iterating until no robot moves.  To
handle concave boundaries and holes uniformly, the FoI is discretised
into a dense point grid; a robot's Voronoi region is the set of grid
points nearest to it, and its centroid is their weighted mean.  The
paper's hole rules fall out naturally: a centroid that lands in a hole
is replaced by the nearest grid point (Sec. III-D3), and the
connectivity-safe variant halves every step while a move would
disconnect the network (Sec. III-D1, last paragraph).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import CoverageError
from repro.coverage.density import DensityFunction, uniform_density, validate_density
from repro.foi.region import FieldOfInterest
from repro.geometry.vec import as_points
from repro.network.udg import UnitDiskGraph

__all__ = ["LloydResult", "LloydConfig", "lloyd_iteration", "run_lloyd"]


@dataclass(frozen=True)
class LloydConfig:
    """Tuning knobs for the Lloyd iteration.

    Attributes
    ----------
    grid_target : int
        Approximate number of discretisation points.
    max_iterations : int
    tolerance_fraction : float
        Convergence: stop when the largest move falls below this
        fraction of the grid pitch.
    connectivity_safe : bool
        Enforce the step-halving rule so the network never disconnects
        during the adjustment.
    max_halvings : int
        Give up moving (this iteration) after this many halvings.
    """

    grid_target: int = 2500
    max_iterations: int = 60
    tolerance_fraction: float = 0.05
    connectivity_safe: bool = True
    max_halvings: int = 6


@dataclass(frozen=True)
class LloydResult:
    """Outcome of a Lloyd run.

    Attributes
    ----------
    positions : (n, 2) ndarray
        Final robot positions.
    snapshots : list of (n, 2) ndarray
        Positions after every iteration (first entry is the start).
    iterations : int
    converged : bool
    total_movement : float
        Sum over robots of per-iteration step lengths (the adjustment
        cost added to the transition's moving distance).
    """

    positions: np.ndarray
    snapshots: list[np.ndarray]
    iterations: int
    converged: bool
    total_movement: float


def _assign_centroids(
    sites: np.ndarray,
    grid: np.ndarray,
    weights: np.ndarray,
) -> np.ndarray:
    """Weighted centroid of each site's nearest-grid-point region.

    Sites whose region is empty (no grid point is nearest to them,
    e.g. robots still outside the FoI) get the nearest grid point as
    centroid, pulling them into the region.
    """
    diff = grid[:, None, :] - sites[None, :, :]
    d2 = diff[..., 0] ** 2 + diff[..., 1] ** 2
    owner = np.argmin(d2, axis=1)
    n = len(sites)
    w_sum = np.bincount(owner, weights=weights, minlength=n)
    cx = np.bincount(owner, weights=weights * grid[:, 0], minlength=n)
    cy = np.bincount(owner, weights=weights * grid[:, 1], minlength=n)
    centroids = sites.copy()
    nonempty = w_sum > 0
    centroids[nonempty, 0] = cx[nonempty] / w_sum[nonempty]
    centroids[nonempty, 1] = cy[nonempty] / w_sum[nonempty]
    for i in np.flatnonzero(~nonempty):
        dg = grid - sites[i]
        centroids[i] = grid[int(np.argmin(dg[:, 0] ** 2 + dg[:, 1] ** 2))]
    return centroids


def lloyd_iteration(
    sites: np.ndarray,
    foi: FieldOfInterest,
    grid: np.ndarray,
    weights: np.ndarray,
) -> np.ndarray:
    """One Lloyd step: per-site density-weighted centroid, hole-corrected."""
    centroids = _assign_centroids(sites, grid, weights)
    # Hole rule: a centroid inside a hole (or outside the outer
    # boundary, possible for weighted regions hugging a concavity)
    # falls back to the nearest grid point.
    ok = foi.contains(centroids)
    for i in np.flatnonzero(~ok):
        dg = grid - centroids[i]
        centroids[i] = grid[int(np.argmin(dg[:, 0] ** 2 + dg[:, 1] ** 2))]
    return centroids


def run_lloyd(
    start_positions,
    foi: FieldOfInterest,
    comm_range: float | None = None,
    density: DensityFunction | None = None,
    config: LloydConfig | None = None,
) -> LloydResult:
    """Run Lloyd's algorithm from ``start_positions`` inside ``foi``.

    Parameters
    ----------
    start_positions : (n, 2) array-like
    foi : FieldOfInterest
    comm_range : float, optional
        Required when ``config.connectivity_safe`` (the default); used
        for the disconnect check.
    density : DensityFunction, optional
        Defaults to uniform.
    config : LloydConfig, optional

    Returns
    -------
    LloydResult
    """
    cfg = config or LloydConfig()
    sites = as_points(start_positions).copy()
    if len(sites) == 0:
        raise CoverageError("need at least one robot")
    if cfg.connectivity_safe and comm_range is None:
        raise CoverageError("comm_range required for connectivity-safe Lloyd")
    dens = density or uniform_density()
    spacing = float(np.sqrt(foi.area / cfg.grid_target))
    grid = foi.grid_points(spacing)
    if len(grid) < len(sites):
        raise CoverageError(
            f"discretisation too coarse: {len(grid)} grid points for "
            f"{len(sites)} robots"
        )
    weights = validate_density(dens, grid)
    tol = cfg.tolerance_fraction * spacing

    snapshots = [sites.copy()]
    total_movement = 0.0
    converged = False
    iterations = 0
    for iterations in range(1, cfg.max_iterations + 1):
        targets = lloyd_iteration(sites, foi, grid, weights)
        if cfg.connectivity_safe:
            new_sites = _connectivity_safe_step(
                sites, targets, float(comm_range), cfg.max_halvings
            )
        else:
            new_sites = targets
        step = np.hypot(*(new_sites - sites).T)
        total_movement += float(step.sum())
        sites = new_sites
        snapshots.append(sites.copy())
        if float(step.max()) < tol:
            converged = True
            break
    return LloydResult(
        positions=sites,
        snapshots=snapshots,
        iterations=iterations,
        converged=converged,
        total_movement=total_movement,
    )


def _connectivity_safe_step(
    sites: np.ndarray, targets: np.ndarray, comm_range: float, max_halvings: int
) -> np.ndarray:
    """Move toward targets, halving *individual* steps that break links.

    Implements Sec. III-D1: "a mobile robot collects the computed
    centroid positions of its one-range neighbors and compares with its
    own.  If no mobile robot will disconnect from the network, every
    robot simply moves to its centroid position; otherwise, each robot
    checks whether it is safe to move to half of the distance to the
    centroid position and so on."

    The check is the paper's local one - after the synchronous step a
    robot must keep at least one of its current neighbours in range -
    with per-robot step factors, so one cornered robot cannot freeze
    the whole swarm.  A global connectivity check backstops the local
    rule (two subgroups could drift apart with all local links intact);
    if it trips, the entire step is uniformly halved, and in the worst
    case the swarm holds position for this iteration.
    """
    graph = UnitDiskGraph(sites, comm_range)
    was_connected = graph.is_connected()
    n = len(sites)
    alphas = np.ones(n)
    moves = targets - sites
    for _ in range(max_halvings + 1):
        proposal = sites + alphas[:, None] * moves
        unsafe = []
        for i in range(n):
            nbrs = graph.neighbors(i)
            if not nbrs:
                continue
            d = np.hypot(*(proposal[nbrs] - proposal[i]).T)
            if not (d <= comm_range).any():
                unsafe.append(i)
        if not unsafe:
            break
        alphas[unsafe] /= 2.0
    proposal = sites + alphas[:, None] * moves
    if not was_connected or UnitDiskGraph(proposal, comm_range).is_connected():
        return proposal
    # Global backstop: uniformly shrink the (locally safe) step.
    scale = 1.0
    for _ in range(max_halvings + 1):
        scale /= 2.0
        trial = sites + scale * alphas[:, None] * moves
        if UnitDiskGraph(trial, comm_range).is_connected():
            return trial
    return sites.copy()
