"""Mission campaign: the (family, motion, seed) replanning matrix.

Runs :class:`~repro.missions.MissionRunner` missions across a matrix of
zoo families x target motions x seeds and aggregates one canonical
summary document, mirroring the zoo/chaos campaign shape:

* every cell is a full mission (seeded target sequence, per-epoch
  incremental replanning, C = 1 re-verification at every sampled
  instant including jump left-limits);
* a cell that cannot complete surfaces as a typed ``error`` row
  carrying the :class:`~repro.errors.MissionError` message - the
  matrix is total, never silently truncated;
* the summary is byte-identical for any ``workers`` count (mission
  documents exclude wall-clock; each row carries the full document's
  ``canonical_digest`` so byte-identity checks cover plan bytes too).

``python -m repro mission`` is the CLI front-end;
``python -m repro report --missions`` embeds :func:`render_missions`'s
table into the markdown report.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.errors import MissionError
from repro.exec import ParallelMap, resolve_workers
from repro.experiments.tables import format_table
from repro.io import canonical_digest, dumps_canonical
from repro.obs import span

# NOTE: repro.missions is imported inside functions - this module is
# pulled in by the repro.experiments package __init__, while
# repro.missions itself builds on repro.experiments.zoo; importing it
# here at module level would close an import cycle.

__all__ = [
    "DEFAULT_FAMILIES",
    "mission_campaign",
    "missions_passed",
    "render_missions",
    "run_mission_cell",
    "summary_bytes",
]

#: default family subset - one compact, one elongated, one holed FoI,
#: enough motion diversity to exercise drift cache hits and deform
#: cache misses without a full five-family sweep per CI run.
DEFAULT_FAMILIES = ("corridor", "annulus")


def run_mission_cell(
    spec: MissionSpec, config: MissionConfig | None = None
) -> dict[str, Any]:
    """One matrix cell: run the mission, reduce to a summary row.

    The row keeps the campaign document small (epoch records stay out)
    but pins the full mission document through ``mission_sha256`` - two
    campaigns agree on a row iff the underlying mission documents are
    byte-identical.
    """
    from repro.missions import MissionRunner

    row: dict[str, Any] = {
        "family": spec.family,
        "motion": spec.motion,
        "seed": spec.seed,
        "epochs": spec.epochs,
    }
    try:
        doc = MissionRunner(spec, config).run()
    except MissionError as exc:
        row.update({
            "outcome": "error",
            "epoch": exc.epoch,
            "error": str(exc),
        })
        return row
    summary = doc["summary"]
    row.update({
        "outcome": "pass" if summary["connected_all"] else "fail",
        "replans": summary["replans"],
        "fault_replans": summary["fault_replans"],
        "survivors": summary["survivors"],
        "cache_hits": summary["cache_hits"],
        "cache_misses": summary["cache_misses"],
        "total_distance": summary["total_distance"],
        "c_violations": summary["c_violations"],
        "in_target": summary["in_target"],
        "mission_sha256": canonical_digest(doc),
    })
    return row


def _mission_task(task) -> dict[str, Any]:
    """Module-level (picklable) worker task for :class:`ParallelMap`."""
    spec, config = task
    return run_mission_cell(spec, config)


def mission_campaign(
    families: Sequence[str] = DEFAULT_FAMILIES,
    motions: Sequence[str] | None = None,
    seeds: Sequence[int] = (0,),
    epochs: int = 3,
    config: MissionConfig | None = None,
    workers: int | None = None,
    backend: str = "process",
) -> dict[str, Any]:
    """Run the (family, motion, seed) matrix and aggregate a summary.

    Identical output for any ``workers`` count: every mission scopes
    its own metrics and cache, so fan-out order cannot leak into the
    rows.  Serialize with :func:`summary_bytes` for byte-identity
    comparisons across runs and worker counts.
    """
    from repro.experiments.zoo.families import FAMILIES
    from repro.missions import MOTIONS, MissionConfig, MissionSpec

    config = config or MissionConfig()
    motions = tuple(motions) if motions is not None else MOTIONS
    unknown = [f for f in families if f not in FAMILIES]
    if unknown:
        raise MissionError(
            f"unknown mission families {unknown}; valid: {list(FAMILIES)}"
        )
    unknown = [m for m in motions if m not in MOTIONS]
    if unknown:
        raise MissionError(
            f"unknown mission motions {unknown}; valid: {list(MOTIONS)}"
        )
    specs = [
        MissionSpec(family=family, seed=seed, epochs=epochs, motion=motion)
        for family in families
        for motion in motions
        for seed in seeds
    ]
    workers = resolve_workers(workers)
    with span("mission.campaign", cells=len(specs), workers=workers):
        if workers > 1 and len(specs) > 1:
            engine = ParallelMap(backend=backend, workers=workers)
            rows = engine.map(_mission_task, [(s, config) for s in specs])
        else:
            rows = [run_mission_cell(s, config) for s in specs]

    per_motion: dict[str, Any] = {}
    for motion in motions:
        cells = [r for r in rows if r["motion"] == motion]
        passed = [r for r in cells if r["outcome"] == "pass"]
        per_motion[motion] = {
            "cells": len(cells),
            "passed": len(passed),
            "failed": sum(1 for r in cells if r["outcome"] == "fail"),
            "errors": sum(1 for r in cells if r["outcome"] == "error"),
            "cache_hits": sum(r["cache_hits"] for r in passed),
            "cache_misses": sum(r["cache_misses"] for r in passed),
        }
    completed = [r for r in rows if r["outcome"] != "error"]
    return {
        "config": config.to_dict(),
        "matrix": {
            "families": list(families),
            "motions": list(motions),
            "seeds": list(seeds),
            "epochs": epochs,
        },
        "cells": rows,
        "motions": per_motion,
        "summary": {
            "cells": len(rows),
            "passed": sum(1 for r in rows if r["outcome"] == "pass"),
            "failed": sum(1 for r in rows if r["outcome"] == "fail"),
            "errors": sum(1 for r in rows if r["outcome"] == "error"),
            "replans_total": sum(r["replans"] for r in completed),
            "cache_hits_total": sum(r["cache_hits"] for r in completed),
            "cache_misses_total": sum(r["cache_misses"] for r in completed),
            "connected_all": all(
                r["outcome"] == "pass" for r in rows
            ),
        },
    }


def summary_bytes(summary: dict[str, Any]) -> bytes:
    """Canonical bytes of a campaign summary (byte-identity checks)."""
    return dumps_canonical(summary)


def render_missions(summary: dict[str, Any]) -> str:
    """Human-readable per-cell table (the CLI's output)."""
    rows = []
    for cell in summary["cells"]:
        if cell["outcome"] == "error":
            rows.append([
                cell["family"], cell["motion"], cell["seed"],
                f"error@{cell['epoch']}", "-", "-", "-", "-", "-",
            ])
            continue
        rows.append([
            cell["family"],
            cell["motion"],
            cell["seed"],
            cell["outcome"],
            cell["replans"],
            cell["cache_hits"],
            cell["cache_misses"],
            cell["c_violations"],
            f"{cell['total_distance'] / 1000:.2f}",
        ])
    table = format_table(
        ["family", "motion", "seed", "outcome", "replans",
         "hits", "misses", "C viol", "D (km)"],
        rows,
    )
    agg = summary["summary"]
    digest = canonical_digest(summary)
    tail = (
        f"{agg['passed']}/{agg['cells']} missions held C = 1 at every "
        f"sampled instant; {agg['replans_total']} replans, "
        f"{agg['cache_hits_total']} disk-map cache hits / "
        f"{agg['cache_misses_total']} misses"
    )
    return f"{table}\n{tail}\ncanonical digest {digest}"


def missions_passed(summary: dict[str, Any]) -> bool:
    """The campaign's overall verdict (the CLI's exit code)."""
    return bool(summary["summary"]["connected_all"])
