"""Minimal dependency-free SVG canvas.

The offline environment has no matplotlib, so figures (swarm layouts,
disk embeddings, trajectories - the panels of Figs. 2-6) are rendered
as standalone SVG files with this small builder.  World coordinates are
mapped to screen space with a uniform scale and a flipped y-axis.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

__all__ = ["SvgCanvas"]


def _fmt(x: float) -> str:
    return f"{x:.2f}"


class SvgCanvas:
    """An SVG drawing surface over a world-coordinate window.

    Parameters
    ----------
    world_bounds : (xmin, ymin, xmax, ymax)
        World window to display.
    width : int
        Pixel width; height follows from the aspect ratio.
    margin : int
        Pixel margin around the drawing.
    """

    def __init__(self, world_bounds, width: int = 640, margin: int = 16) -> None:
        xmin, ymin, xmax, ymax = (float(v) for v in world_bounds)
        if xmax <= xmin or ymax <= ymin:
            raise ValueError("world bounds must span a positive area")
        self._xmin, self._ymin = xmin, ymin
        self._scale = (width - 2 * margin) / (xmax - xmin)
        self.width = width
        self.height = int(np.ceil((ymax - ymin) * self._scale)) + 2 * margin
        self._margin = margin
        self._ymax = ymax
        self._elements: list[str] = []

    # ------------------------------------------------------------------

    def to_screen(self, point) -> tuple[float, float]:
        """World point to pixel coordinates (y flipped)."""
        x, y = float(point[0]), float(point[1])
        sx = self._margin + (x - self._xmin) * self._scale
        sy = self._margin + (self._ymax - y) * self._scale
        return sx, sy

    # ------------------------------------------------------------------

    def circle(self, center, radius_px: float = 3.0, fill: str = "#1f77b4",
               stroke: str = "none", opacity: float = 1.0) -> None:
        """A dot of fixed pixel radius at a world position."""
        cx, cy = self.to_screen(center)
        self._elements.append(
            f'<circle cx="{_fmt(cx)}" cy="{_fmt(cy)}" r="{_fmt(radius_px)}" '
            f'fill="{fill}" stroke="{stroke}" opacity="{opacity:g}"/>'
        )

    def line(self, a, b, stroke: str = "#888", width_px: float = 1.0,
             opacity: float = 1.0) -> None:
        """A world-space line segment."""
        x1, y1 = self.to_screen(a)
        x2, y2 = self.to_screen(b)
        self._elements.append(
            f'<line x1="{_fmt(x1)}" y1="{_fmt(y1)}" x2="{_fmt(x2)}" y2="{_fmt(y2)}" '
            f'stroke="{stroke}" stroke-width="{width_px:g}" opacity="{opacity:g}"/>'
        )

    def polygon(self, vertices, fill: str = "none", stroke: str = "#333",
                width_px: float = 1.5, opacity: float = 1.0) -> None:
        """A closed world-space polygon."""
        pts = " ".join(
            f"{_fmt(x)},{_fmt(y)}" for x, y in (self.to_screen(v) for v in vertices)
        )
        self._elements.append(
            f'<polygon points="{pts}" fill="{fill}" stroke="{stroke}" '
            f'stroke-width="{width_px:g}" fill-opacity="{opacity:g}"/>'
        )

    def polyline(self, vertices, stroke: str = "#333", width_px: float = 1.0,
                 opacity: float = 1.0) -> None:
        """An open world-space polyline."""
        pts = " ".join(
            f"{_fmt(x)},{_fmt(y)}" for x, y in (self.to_screen(v) for v in vertices)
        )
        self._elements.append(
            f'<polyline points="{pts}" fill="none" stroke="{stroke}" '
            f'stroke-width="{width_px:g}" opacity="{opacity:g}"/>'
        )

    def text(self, position, content: str, size_px: int = 12,
             fill: str = "#111") -> None:
        """A text label anchored at a world position."""
        x, y = self.to_screen(position)
        safe = (
            content.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
        )
        self._elements.append(
            f'<text x="{_fmt(x)}" y="{_fmt(y)}" font-size="{size_px}" '
            f'fill="{fill}" font-family="sans-serif">{safe}</text>'
        )

    # ------------------------------------------------------------------

    def to_string(self) -> str:
        """Serialise the canvas as an SVG document."""
        body = "\n".join(self._elements)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.width}" '
            f'height="{self.height}" viewBox="0 0 {self.width} {self.height}">\n'
            f'<rect width="100%" height="100%" fill="white"/>\n{body}\n</svg>\n'
        )

    def save(self, path) -> Path:
        """Write the SVG document to ``path`` and return it."""
        p = Path(path)
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(self.to_string())
        return p
