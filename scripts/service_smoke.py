#!/usr/bin/env python
"""CI smoke test for the planning service, over a real process boundary.

Boots ``python -m repro serve`` as a subprocess on an ephemeral port,
then drives it with the blocking client:

1. ``/healthz`` answers ``ok`` before any work,
2. submit -> poll -> fetch a small scenario-1 plan,
3. the fetched bytes equal the same request run directly through
   ``repro.experiments.run_scenarios`` (the byte-identity contract),
4. ``/healthz`` still answers ``ok`` after the solve, and
5. SIGINT shuts the server down cleanly (exit code 0).

Run:  PYTHONPATH=src python scripts/service_smoke.py
"""

from __future__ import annotations

import signal
import subprocess
import sys

from repro.experiments import get_scenario, run_scenarios
from repro.io import dumps_canonical, plan_document
from repro.service import ServiceClient

KNOBS = dict(foi_target_points=200, lloyd_grid_target=600, resolution=12)
METHODS = ["ours (a)", "Hungarian"]


def main() -> int:
    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        # The server announces its bound port on the first stdout line.
        banner = server.stdout.readline().strip()
        print(banner)
        port = int(banner.rsplit(":", 1)[1])
        client = ServiceClient(port=port, timeout=60.0)

        health = client.healthz()
        assert health["status"] == "ok", health
        print("healthz before: ok")

        submitted = client.submit(
            [1], separation_factor=12.0, methods=METHODS, **KNOBS
        )
        print(f"submitted {submitted['job_id']} ({submitted['state']})")
        status = client.wait(submitted["job_id"], timeout=600.0, poll_s=0.2)
        assert status["state"] == "done", status
        served = client.result_bytes(submitted["job_id"])
        print(f"fetched result: {len(served)} bytes")

        direct = run_scenarios(
            [get_scenario(1)],
            separation_factor=12.0,
            methods=tuple(METHODS),
            workers=1,
            **KNOBS,
        )
        assert served == dumps_canonical(plan_document(direct))
        print("byte-identity vs direct run_scenarios: OK")

        health = client.healthz()
        assert health["status"] == "ok", health
        print("healthz after: ok")
    finally:
        server.send_signal(signal.SIGINT)
        try:
            server.wait(timeout=30.0)
        except subprocess.TimeoutExpired:
            server.kill()
            server.wait()
            print("server did not shut down on SIGINT", file=sys.stderr)
            return 1
    print(f"server exited {server.returncode}")
    return 0 if server.returncode == 0 else 1


if __name__ == "__main__":
    sys.exit(main())
