"""Planning-as-a-service: serve marching/plan computation over HTTP.

The service layer turns the one-shot experiment harness into a
long-running concurrent endpoint, reusing the substrate the library
already has - :mod:`repro.exec` for fan-out/timeouts/retries/caching
and :mod:`repro.obs` for per-request span trees and live metrics:

* :class:`JobQueue` - bounded admission with priorities, request
  deduplication by content hash, and TTL-based result retention.
* :class:`ExecutorBridge` - dispatcher threads that run each job
  through a :class:`repro.exec.ParallelMap` (per-job timeout, bounded
  retries, obs merge-back).
* :class:`ShardRouter` - consistent-hash routing of content addresses
  onto shard workers, so a fleet deduplicates exactly like one queue.
* :class:`JobJournal` - the write-ahead journal (fsynced, versioned,
  segment-rotated) that makes the queue's state transitions durable;
  on startup the service replays it, re-enqueues non-terminal jobs
  (at-least-once, made effectively exactly-once by content-address
  dedup) and compacts the log.  Missions additionally checkpoint per
  epoch (:class:`repro.missions.MissionCheckpoint`) so a killed
  process resumes mid-mission with a byte-identical document.
* :class:`PlanningService` - the asyncio HTTP frontend
  (``POST /v1/plan``, ``POST /v1/mission`` streaming mission jobs, job
  polling, SSE progress streaming at ``GET /v1/jobs/{id}/events`` with
  ``?since=`` resume cursors, ``/healthz``, ``/metrics``, ``/tracez``)
  over ``service_workers`` shard workers, with 429-with-``Retry-After``
  backpressure and graceful draining.
* :class:`ServiceClient` - the blocking stdlib client used by tests,
  examples, the load generator and ``repro submit``; its
  ``run_mission``/``iter_events`` follow mission event streams and
  resume dropped SSE connections from the last-seen sequence number.

Quickstart::

    from repro.service import PlanningService, ServiceClient

    with PlanningService(port=0, dispatchers=2) as service:
        client = ServiceClient(port=service.port)
        submitted = client.submit([1], separation_factor=12.0)
        client.wait(submitted["job_id"])
        document = client.result(submitted["job_id"])
"""

from repro.service.client import ServiceClient
from repro.service.executor_bridge import ExecutorBridge
from repro.service.jobs import (
    JOB_STATES,
    Job,
    JobExpiredError,
    JobQueue,
    QueueClosed,
    QueueFull,
    job_id_for,
    normalize_mission_request,
    normalize_plan_request,
)
from repro.service.journal import JobJournal, JournalReplay, replay_records
from repro.service.server import (
    PlanningService,
    ShardWorker,
    default_runner,
    run_mission_request,
    run_plan_request,
)
from repro.service.sharding import ShardRouter

__all__ = [
    "JOB_STATES",
    "ExecutorBridge",
    "Job",
    "JobExpiredError",
    "JobJournal",
    "JobQueue",
    "JournalReplay",
    "PlanningService",
    "QueueClosed",
    "QueueFull",
    "ServiceClient",
    "ShardRouter",
    "ShardWorker",
    "default_runner",
    "job_id_for",
    "normalize_mission_request",
    "normalize_plan_request",
    "replay_records",
    "run_mission_request",
    "run_plan_request",
]
