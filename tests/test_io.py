"""Round-trip tests for plan serialisation."""

import json

import numpy as np
import pytest

from repro.coverage import LloydConfig
from repro.errors import ReproError
from repro.foi import FieldOfInterest, ellipse_polygon
from repro.io import load_result_dict, result_to_dict, save_result, trajectory_from_dict
from repro.marching import MarchingConfig, MarchingPlanner
from repro.metrics import stable_link_ratio, total_moving_distance
from repro.robots import RadioSpec, Swarm


@pytest.fixture(scope="module")
def planned():
    radio = RadioSpec.from_comm_range(80.0)
    m1 = FieldOfInterest(
        ellipse_polygon(1.0, 1.0, samples=32).scaled_to_area(100_000.0), name="m1"
    )
    swarm = Swarm.deploy_lattice(m1, 36, radio)
    m2 = FieldOfInterest(
        ellipse_polygon(1.1, 0.9, samples=32).scaled_to_area(95_000.0), name="m2"
    ).translated((900.0, 0.0))
    cfg = MarchingConfig(
        foi_target_points=180, lloyd=LloydConfig(grid_target=600, max_iterations=15)
    )
    return MarchingPlanner(cfg).plan(swarm, m2)


class TestRoundTrip:
    def test_dict_is_json_serialisable(self, planned):
        doc = result_to_dict(planned)
        text = json.dumps(doc)
        assert json.loads(text)["method"] == "ours (a)"

    def test_save_and_load(self, planned, tmp_path):
        path = save_result(planned, tmp_path / "plan.json")
        loaded = load_result_dict(path)
        assert loaded["method"] == planned.method
        assert np.allclose(loaded["start_positions"], planned.start_positions)
        assert np.allclose(loaded["final_positions"], planned.final_positions)
        assert loaded["repair"].rounds == planned.repair.rounds

    def test_metrics_survive_round_trip(self, planned, tmp_path):
        path = save_result(planned, tmp_path / "plan.json")
        loaded = load_result_dict(path)
        original_d = total_moving_distance(planned.trajectory)
        loaded_d = total_moving_distance(loaded["trajectory"])
        assert loaded_d == pytest.approx(original_d, rel=1e-9)
        original_l = stable_link_ratio(planned.links, planned.trajectory)
        loaded_l = stable_link_ratio(loaded["links"], loaded["trajectory"])
        assert loaded_l == pytest.approx(original_l)

    def test_trajectory_positions_identical(self, planned, tmp_path):
        path = save_result(planned, tmp_path / "plan.json")
        loaded = load_result_dict(path)
        for t in (0.0, 0.33, 0.8, 1.0):
            assert np.allclose(
                loaded["trajectory"].positions_at(t),
                planned.trajectory.positions_at(t),
                atol=1e-12,
            )

    def test_version_checked(self, planned, tmp_path):
        doc = result_to_dict(planned)
        doc["format_version"] = 999
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(doc))
        with pytest.raises(ReproError):
            load_result_dict(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(ReproError):
            load_result_dict(tmp_path / "nope.json")

    def test_malformed_trajectory(self):
        with pytest.raises(ReproError):
            trajectory_from_dict({"paths": [{"waypoints": [[0, 0]]}]})
