"""E4 - Fig. 3(c) rows 4-5: scenario 4 (non-hole -> big convex hole)."""

from _shared import assert_paper_shape, get_sweep, print_sweep


def test_fig3c_scenario4(benchmark):
    sweep = benchmark.pedantic(get_sweep, args=(4,), rounds=1, iterations=1)
    print_sweep(sweep)
    assert_paper_shape(sweep)
