"""Tests for Robot, RadioSpec and Swarm."""

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.foi import m1_base
from repro.robots import SQRT3, RadioSpec, Robot, Swarm


class TestRadioSpec:
    def test_valid(self):
        spec = RadioSpec(comm_range=80.0, sensing_range=40.0)
        assert spec.comm_range == 80.0

    def test_paper_assumption_enforced(self):
        # r_c < sqrt(3) r_s violates the standing assumption.
        with pytest.raises(GeometryError):
            RadioSpec(comm_range=50.0, sensing_range=40.0)

    def test_from_comm_range_tight(self):
        spec = RadioSpec.from_comm_range(80.0)
        assert spec.sensing_range == pytest.approx(80.0 / SQRT3)
        assert spec.lattice_spacing == pytest.approx(80.0)

    def test_nonpositive_rejected(self):
        with pytest.raises(GeometryError):
            RadioSpec(comm_range=0.0, sensing_range=1.0)


class TestRobot:
    def test_construction(self, radio):
        r = Robot(robot_id=3, position=[1.0, 2.0], radio=radio)
        assert np.allclose(r.position, [1.0, 2.0])

    def test_negative_id_rejected(self, radio):
        with pytest.raises(GeometryError):
            Robot(robot_id=-1, position=[0, 0], radio=radio)

    def test_moved_to(self, radio):
        r = Robot(0, [0.0, 0.0], radio)
        r2 = r.moved_to([3.0, 4.0])
        assert r2.robot_id == 0
        assert r.distance_to(r2) == pytest.approx(5.0)

    def test_communication_predicate(self, radio):
        a = Robot(0, [0.0, 0.0], radio)
        b = Robot(1, [79.0, 0.0], radio)
        c = Robot(2, [200.0, 0.0], radio)
        assert a.can_communicate_with(b)
        assert not a.can_communicate_with(c)
        assert not a.can_communicate_with(a)


class TestSwarm:
    def test_positions_read_only(self, m1_small_swarm):
        with pytest.raises(ValueError):
            m1_small_swarm.positions[0, 0] = 0.0

    def test_robots_materialised(self, m1_small_swarm):
        robots = m1_small_swarm.robots()
        assert len(robots) == m1_small_swarm.size
        assert robots[5].robot_id == 5

    def test_with_positions(self, m1_small_swarm):
        moved = m1_small_swarm.with_positions(m1_small_swarm.positions + 10.0)
        assert moved.size == m1_small_swarm.size
        with pytest.raises(GeometryError):
            m1_small_swarm.with_positions(np.zeros((3, 2)))

    def test_empty_rejected(self, radio):
        with pytest.raises(GeometryError):
            Swarm(np.zeros((0, 2)), radio)

    def test_total_displacement(self, radio):
        swarm = Swarm([[0.0, 0.0], [1.0, 0.0]], radio)
        assert swarm.total_displacement_to([[3.0, 4.0], [1.0, 0.0]]) == pytest.approx(5.0)


class TestLatticeDeployment:
    def test_exact_count(self, radio):
        swarm = Swarm.deploy_lattice(m1_base(), 144, radio)
        assert swarm.size == 144

    def test_inside_foi(self, radio):
        foi = m1_base()
        swarm = Swarm.deploy_lattice(foi, 100, radio)
        assert foi.contains(swarm.positions).all()

    def test_connected(self, radio):
        swarm = Swarm.deploy_lattice(m1_base(), 144, radio)
        assert swarm.is_connected()

    def test_six_neighbour_structure(self, radio):
        # Interior robots of a triangular lattice have 6 neighbours.
        swarm = Swarm.deploy_lattice(m1_base(), 144, radio)
        g = swarm.communication_graph()
        degrees = [g.degree(i) for i in range(swarm.size)]
        assert max(degrees) >= 6
        assert np.mean(degrees) > 4.0

    def test_holed_foi_deployment(self, holed_foi, small_radio):
        swarm = Swarm.deploy_lattice(holed_foi, 40, small_radio)
        assert swarm.size == 40
        assert holed_foi.contains(swarm.positions).all()

    def test_deterministic(self, radio):
        a = Swarm.deploy_lattice(m1_base(), 64, radio)
        b = Swarm.deploy_lattice(m1_base(), 64, radio)
        assert np.array_equal(a.positions, b.positions)

    def test_impossible_count_raises(self, small_radio):
        # 10,000 robots in a 100x100 square with r_c=20: spacing would
        # have to be ~1, fine; instead ask for impossible density with a
        # huge count but tiny allowed spacing - use a tiny comm range.
        tiny = RadioSpec.from_comm_range(0.5)
        from repro.foi import FieldOfInterest

        foi = FieldOfInterest([(0, 0), (100, 0), (100, 100), (0, 100)])
        with pytest.raises(GeometryError):
            Swarm.deploy_lattice(foi, 100, tiny)
