"""Exact bounded Voronoi cells via half-plane clipping.

Each site's Voronoi cell is the intersection of the perpendicular-
bisector half-planes against every other site; clipping a bounding box
through them yields the cell as a convex polygon.  Intersecting with a
*convex* field of interest stays exact.  (For concave or holed FoIs the
Lloyd iteration uses the grid-based discretisation in
:mod:`repro.coverage.lloyd`; the exact cells here serve convex regions
and act as the test oracle for the discretised version.)
"""

from __future__ import annotations

import numpy as np

from repro.errors import CoverageError
from repro.geometry.clipping import bounding_box_polygon, clip_convex, clip_halfplane
from repro.geometry.polygon import Polygon, polygon_centroid, signed_area
from repro.geometry.vec import as_points

__all__ = ["voronoi_cell", "voronoi_cells", "clipped_voronoi_cells"]


def voronoi_cell(sites, index: int, window) -> np.ndarray:
    """Voronoi cell of ``sites[index]`` clipped to polygon ``window``.

    Parameters
    ----------
    sites : (n, 2) array-like
    index : int
    window : (m, 2) array-like
        Convex CCW clip polygon bounding the diagram.

    Returns
    -------
    (k, 2) ndarray
        The cell polygon (possibly empty if the site lies far outside
        the window).
    """
    pts = as_points(sites)
    if not 0 <= index < len(pts):
        raise CoverageError(f"site index {index} out of range")
    cell = as_points(window)
    site = pts[index]
    order = np.argsort(np.hypot(*(pts - site).T))
    for j in order:
        if j == index:
            continue
        other = pts[j]
        midpoint = (site + other) / 2.0
        normal = other - site  # points away from `site`; cell keeps <= 0 side
        cell = clip_halfplane(cell, midpoint, normal)
        if len(cell) == 0:
            break
    return cell


def voronoi_cells(sites, window) -> list[np.ndarray]:
    """All Voronoi cells clipped to ``window`` (convex CCW polygon)."""
    pts = as_points(sites)
    if len(pts) == 0:
        raise CoverageError("need at least one site")
    return [voronoi_cell(pts, i, window) for i in range(len(pts))]


def clipped_voronoi_cells(sites, region: Polygon) -> list[np.ndarray]:
    """Voronoi cells intersected with a convex region polygon.

    Raises
    ------
    CoverageError
        If ``region`` is not convex (use the grid-based Lloyd for
        concave or holed FoIs).
    """
    if not region.is_convex:
        raise CoverageError(
            "exact Voronoi clipping requires a convex region; "
            "use grid-based Lloyd for concave/holed FoIs"
        )
    box = bounding_box_polygon(region.vertices, margin=region.perimeter)
    out = []
    for cell in voronoi_cells(sites, box):
        if len(cell) == 0:
            out.append(cell)
            continue
        clipped = clip_convex(cell, region.vertices)
        out.append(clipped)
    return out


def cell_centroid(cell: np.ndarray) -> np.ndarray:
    """Area centroid of a cell polygon (mean of vertices when degenerate)."""
    if len(cell) < 3:
        raise CoverageError("centroid of a degenerate cell")
    return polygon_centroid(cell)


def cell_area(cell: np.ndarray) -> float:
    """Unsigned area of a cell polygon (0 for degenerate cells)."""
    if len(cell) < 3:
        return 0.0
    return abs(signed_area(cell))
