"""Timed motion plans for individual robots and whole swarms.

Eqn. 2 of the paper moves a robot along the straight line
``(T - t)/T * p(v) + t/T * q(v)``; detours around holes and the Lloyd
adjustment generalise this to piecewise-linear paths.  A
:class:`TimedPath` is a polyline with a time stamp per waypoint; a
:class:`SwarmTrajectory` bundles one path per robot over a common time
interval and supports the sampling the metrics need.

A useful fact the evaluator exploits: when two robots both move
linearly on a common sub-interval, their mutual distance is a convex
function of time, so it attains its maximum at the sub-interval's
endpoints.  Sampling at the union of all waypoint times therefore
bounds link breakage exactly for synchronous piecewise-linear plans.
The one exception is a *discontinuity* - two waypoints sharing a time
stamp with different positions (an instantaneous jump): interval
sampling only sees the post-jump position there, so exact evaluators
must additionally check the left-sided limit at
:meth:`SwarmTrajectory.discontinuity_times`.
"""

from __future__ import annotations

from functools import cached_property
from typing import Iterable, Sequence

import numpy as np

from repro.errors import PlanningError
from repro.geometry.vec import as_points, polyline_length

__all__ = ["TimedPath", "SwarmTrajectory"]


class TimedPath:
    """A piecewise-linear path through time.

    Parameters
    ----------
    waypoints : (k, 2) array-like
        Path vertices, ``k >= 1``.
    times : (k,) array-like
        Non-decreasing time stamps, one per waypoint.
    """

    def __init__(self, waypoints, times) -> None:
        self.waypoints = as_points(waypoints)
        t = np.asarray(times, dtype=float)
        if len(self.waypoints) == 0:
            raise PlanningError("a path needs at least one waypoint")
        if t.shape != (len(self.waypoints),):
            raise PlanningError("times must align with waypoints")
        if np.any(np.diff(t) < -1e-12):
            raise PlanningError("times must be non-decreasing")
        self.times = t

    @classmethod
    def constant_speed(cls, waypoints, t_start: float, t_end: float) -> "TimedPath":
        """Traverse ``waypoints`` at constant speed over ``[t_start, t_end]``.

        This is the paper's motion model: every robot departs at
        ``t_start`` and arrives at ``t_end``, so robots with longer
        paths move faster.  A single waypoint yields a stationary path.
        """
        pts = as_points(waypoints)
        if t_end < t_start:
            raise PlanningError("t_end must be >= t_start")
        if len(pts) == 1:
            return cls(pts, [t_start])
        seg = np.diff(pts, axis=0)
        seg_len = np.hypot(seg[:, 0], seg[:, 1])
        total = float(seg_len.sum())
        if total <= 0:
            return cls(pts[:1], [t_start])
        frac = np.concatenate([[0.0], np.cumsum(seg_len) / total])
        return cls(pts, t_start + frac * (t_end - t_start))

    @classmethod
    def stationary(cls, point, t_start: float) -> "TimedPath":
        """A path that never moves."""
        return cls(np.asarray(point, dtype=float)[None, :], [t_start])

    @property
    def start(self) -> np.ndarray:
        return self.waypoints[0]

    @property
    def end(self) -> np.ndarray:
        return self.waypoints[-1]

    @cached_property
    def length(self) -> float:
        """Total distance travelled."""
        return polyline_length(self.waypoints)

    def length_between(self, t0: float, t1: float) -> float:
        """Distance travelled over ``[t0, t1]`` (clamped to the span).

        Exact for the piecewise-linear motion model: the partial
        polyline through every waypoint inside the window plus the two
        interpolated endpoints.
        """
        if t1 <= t0 or len(self.waypoints) == 1:
            return 0.0
        inside = (self.times > t0) & (self.times < t1)
        pts = np.vstack(
            [
                self.position_at(t0)[None, :],
                self.waypoints[inside],
                self.position_at(t1)[None, :],
            ]
        )
        return polyline_length(pts)

    def position_at(self, t: float) -> np.ndarray:
        """Position at time ``t`` (clamped to the path's time span)."""
        times = self.times
        if t <= times[0] or len(times) == 1:
            return self.waypoints[0].copy()
        if t >= times[-1]:
            return self.waypoints[-1].copy()
        i = int(np.searchsorted(times, t, side="right")) - 1
        i = min(i, len(times) - 2)
        dt = times[i + 1] - times[i]
        if dt <= 0:
            return self.waypoints[i + 1].copy()
        alpha = (t - times[i]) / dt
        return (1.0 - alpha) * self.waypoints[i] + alpha * self.waypoints[i + 1]

    def positions_at_many(self, ts, side: str = "right") -> np.ndarray:
        """Positions at many times at once (vectorised).

        Parameters
        ----------
        ts : (k,) array-like
        side : {"right", "left"}
            Which one-sided limit to take at a *discontinuity* - a
            waypoint time duplicated with different positions (an
            instantaneous jump).  ``"right"`` (default) returns the
            post-jump position, matching :meth:`position_at`;
            ``"left"`` returns the position approached from earlier
            times.  At continuous instants both sides agree.
        """
        ts = np.asarray(ts, dtype=float)
        if len(self.waypoints) == 1:
            return np.tile(self.waypoints[0], (len(ts), 1))
        if side == "right":
            x = np.interp(ts, self.times, self.waypoints[:, 0])
            y = np.interp(ts, self.times, self.waypoints[:, 1])
            return np.column_stack([x, y])
        if side != "left":
            raise PlanningError(f"side must be 'left' or 'right', got {side!r}")
        times = self.times
        # Segment [j, j+1] with times[j] < t <= times[j+1]; at a
        # duplicated time this picks the *pre*-jump segment.
        j = np.searchsorted(times, ts, side="left") - 1
        j = np.clip(j, 0, len(times) - 2)
        t0 = times[j]
        dt = times[j + 1] - t0
        safe = np.where(dt > 0, dt, 1.0)
        alpha = np.where(dt > 0, (ts - t0) / safe, (ts > t0).astype(float))
        alpha = np.clip(alpha, 0.0, 1.0)[:, None]
        return (1.0 - alpha) * self.waypoints[j] + alpha * self.waypoints[j + 1]

    def discontinuity_times(self) -> np.ndarray:
        """Times where the position jumps (duplicated waypoint times).

        A :class:`TimedPath` permits two waypoints at the same time
        stamp, which models an instantaneous position change.  Interval
        sampling is blind to the pre-jump position at such a time, so
        evaluators must check both one-sided limits there.
        """
        t = self.times
        if len(t) < 2:
            return np.empty(0, dtype=float)
        same_t = np.abs(np.diff(t)) <= 1e-12
        seg = np.diff(self.waypoints, axis=0)
        moved = np.hypot(seg[:, 0], seg[:, 1]) > 0.0
        return np.unique(t[1:][same_t & moved])

    def then(self, other: "TimedPath") -> "TimedPath":
        """Concatenate with a later path starting where this one ends.

        Raises
        ------
        PlanningError
            If the endpoints or time stamps do not line up.
        """
        if not np.allclose(self.end, other.start, atol=1e-6):
            raise PlanningError("paths do not share a junction point")
        if other.times[0] < self.times[-1] - 1e-9:
            raise PlanningError("second path starts before the first ends")
        return TimedPath(
            np.vstack([self.waypoints, other.waypoints[1:]]),
            np.concatenate([self.times, other.times[1:]]),
        )


class SwarmTrajectory:
    """One :class:`TimedPath` per robot over a common interval.

    Parameters
    ----------
    paths : sequence of TimedPath
        Path ``i`` belongs to robot ``i``.
    t_start, t_end : float
        Common interval; individual paths may be stationary within it.
    """

    def __init__(self, paths: Sequence[TimedPath], t_start: float, t_end: float) -> None:
        if not paths:
            raise PlanningError("a swarm trajectory needs at least one path")
        if t_end < t_start:
            raise PlanningError("t_end must be >= t_start")
        self.paths = list(paths)
        self.t_start = float(t_start)
        self.t_end = float(t_end)

    @property
    def robot_count(self) -> int:
        return len(self.paths)

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start

    @cached_property
    def _vector_groups(self) -> dict:
        """Paths grouped by shape for vectorised sampling.

        Almost every path a planner emits is either stationary (one
        waypoint) or a single timed segment (two waypoints); those are
        sampled for the whole swarm with a couple of array expressions.
        Longer polylines fall back to per-path sampling.  Grouping is
        computed once - paths are never mutated after construction.
        """
        single, two, other = [], [], []
        for i, p in enumerate(self.paths):
            if len(p.waypoints) == 1:
                single.append(i)
            elif len(p.waypoints) == 2 and p.times[1] > p.times[0]:
                two.append(i)
            else:
                other.append(i)
        g: dict = {
            "single_idx": np.array(single, dtype=int),
            "two_idx": np.array(two, dtype=int),
            "other_idx": other,
        }
        g["single_w"] = (
            np.array([self.paths[i].waypoints[0] for i in single])
            if single
            else np.zeros((0, 2))
        )
        if two:
            g["two_w0"] = np.array([self.paths[i].waypoints[0] for i in two])
            g["two_w1"] = np.array([self.paths[i].waypoints[1] for i in two])
            g["two_t0"] = np.array([self.paths[i].times[0] for i in two])
            g["two_t1"] = np.array([self.paths[i].times[1] for i in two])
        else:
            g["two_w0"] = g["two_w1"] = np.zeros((0, 2))
            g["two_t0"] = g["two_t1"] = np.zeros(0)
        return g

    def positions_at(self, t: float) -> np.ndarray:
        """All robot positions at time ``t`` as an ``(n, 2)`` array."""
        g = self._vector_groups
        out = np.empty((len(self.paths), 2))
        if len(g["single_idx"]):
            out[g["single_idx"]] = g["single_w"]
        if len(g["two_idx"]):
            t0, t1 = g["two_t0"], g["two_t1"]
            w0, w1 = g["two_w0"], g["two_w1"]
            alpha = (t - t0) / (t1 - t0)
            vals = (1.0 - alpha)[:, None] * w0 + alpha[:, None] * w1
            vals = np.where((t <= t0)[:, None], w0, vals)
            vals = np.where((t >= t1)[:, None], w1, vals)
            out[g["two_idx"]] = vals
        for i in g["other_idx"]:
            out[i] = self.paths[i].position_at(t)
        return out

    @property
    def start_positions(self) -> np.ndarray:
        return self.positions_at(self.t_start)

    @property
    def end_positions(self) -> np.ndarray:
        return self.positions_at(self.t_end)

    def path_lengths(self) -> np.ndarray:
        """Per-robot travelled distance ``d_i``."""
        g = self._vector_groups
        out = np.zeros(len(self.paths))
        if len(g["two_idx"]):
            seg = g["two_w1"] - g["two_w0"]
            out[g["two_idx"]] = np.hypot(seg[:, 0], seg[:, 1])
        for i in g["other_idx"]:
            out[i] = self.paths[i].length
        return out

    def distances_between(self, t0: float, t1: float) -> np.ndarray:
        """Per-robot distance travelled over the window ``[t0, t1]``."""
        return np.array([p.length_between(t0, t1) for p in self.paths])

    def total_distance(self) -> float:
        """The paper's ``D = sum_i d_i``."""
        return float(self.path_lengths().sum())

    def critical_times(self) -> np.ndarray:
        """Sorted union of every waypoint time (plus the interval ends)."""
        arr = np.unique(
            np.concatenate(
                [[self.t_start, self.t_end], *[p.times for p in self.paths]]
            )
        )
        return arr[(arr >= self.t_start - 1e-9) & (arr <= self.t_end + 1e-9)]

    def sample_times(self, resolution: int = 32) -> np.ndarray:
        """Evaluation times: a uniform grid merged with the critical times."""
        uniform = np.linspace(self.t_start, self.t_end, max(2, resolution))
        merged = np.union1d(uniform, self.critical_times())
        return merged

    def discontinuity_times(self) -> np.ndarray:
        """Union of every path's jump times, clipped to the interval."""
        g = self._vector_groups
        parts = [self.paths[i].discontinuity_times() for i in g["other_idx"]]
        if len(g["two_idx"]):
            # A two-waypoint path jumps when its time stamps (nearly)
            # coincide but its endpoints differ - same predicate as
            # :meth:`TimedPath.discontinuity_times`.
            dt = g["two_t1"] - g["two_t0"]
            seg = g["two_w1"] - g["two_w0"]
            jump = (dt <= 1e-12) & (np.hypot(seg[:, 0], seg[:, 1]) > 0.0)
            parts.append(g["two_t1"][jump])
        flat = np.concatenate(parts) if parts else np.empty(0, dtype=float)
        if len(flat) == 0:
            return np.empty(0, dtype=float)
        arr = np.unique(flat)
        return arr[(arr >= self.t_start - 1e-9) & (arr <= self.t_end + 1e-9)]

    def positions_over(self, times, side: str = "right") -> np.ndarray:
        """Positions for every robot at every time: shape ``(k, n, 2)``.

        ``side`` selects the one-sided limit taken at discontinuities
        (see :meth:`TimedPath.positions_at_many`).  Stationary and
        single-segment paths - the vast majority of planner output -
        are sampled for the whole swarm at once; the results are
        bitwise-identical to stacking per-path samples.
        """
        if side not in ("right", "left"):
            raise PlanningError(f"side must be 'left' or 'right', got {side!r}")
        ts = np.asarray(times, dtype=float)
        g = self._vector_groups
        out = np.empty((len(ts), len(self.paths), 2))
        if len(g["single_idx"]):
            out[:, g["single_idx"], :] = g["single_w"][None, :, :]
        if len(g["two_idx"]):
            t0, t1 = g["two_t0"], g["two_t1"]
            w0, w1 = g["two_w0"], g["two_w1"]
            if side == "right":
                # np.interp's exact branches: at-or-before the segment
                # start and at-or-after its end return the endpoint
                # value; strictly inside uses the slope formula.
                slope = (w1 - w0) / (t1 - t0)[:, None]
                vals = (
                    slope[None, :, :] * (ts[:, None] - t0[None, :])[:, :, None]
                    + w0[None, :, :]
                )
                vals = np.where(
                    (ts[:, None] <= t0[None, :])[:, :, None], w0[None, :, :], vals
                )
                vals = np.where(
                    (ts[:, None] >= t1[None, :])[:, :, None], w1[None, :, :], vals
                )
            else:
                # The clipped-alpha formula alone is the scalar "left"
                # path; clamping already covers the out-of-span cases.
                alpha = np.clip(
                    (ts[:, None] - t0[None, :]) / (t1 - t0)[None, :], 0.0, 1.0
                )[:, :, None]
                vals = (1.0 - alpha) * w0[None, :, :] + alpha * w1[None, :, :]
            out[:, g["two_idx"], :] = vals
        for i in g["other_idx"]:
            out[:, i, :] = self.paths[i].positions_at_many(ts, side=side)
        return out

    def snapshots(self, resolution: int = 32) -> Iterable[np.ndarray]:
        """Position arrays at :meth:`sample_times` in time order."""
        table = self.positions_over(self.sample_times(resolution))
        for k in range(table.shape[0]):
            yield table[k]

    def then(self, other: "SwarmTrajectory") -> "SwarmTrajectory":
        """Concatenate two trajectories robot-by-robot."""
        if other.robot_count != self.robot_count:
            raise PlanningError("trajectories have different robot counts")
        joined = [a.then(b) for a, b in zip(self.paths, other.paths)]
        return SwarmTrajectory(joined, self.t_start, other.t_end)
