"""One-shot markdown report across all scenarios.

``python -m repro report`` runs every scenario at a chosen separation,
collects the paper's three metrics per method, renders Table I plus a
per-scenario metric table as markdown, and (optionally) writes the
figure panels.  Useful as a single artifact documenting a full
reproduction run.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

from repro.experiments.harness import DEFAULT_METHODS, ScenarioRun, run_scenarios
from repro.experiments.scenarios import SCENARIOS, get_scenario
from repro.obs import Tracer, activate

__all__ = ["build_report", "write_report"]


def _md_table(headers: Sequence[str], rows) -> str:
    lines = ["| " + " | ".join(headers) + " |",
             "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(str(c) for c in row) + " |")
    return "\n".join(lines)


def build_report(
    separation_factor: float = 20.0,
    scenario_ids: Sequence[int] | None = None,
    methods: Sequence[str] = DEFAULT_METHODS,
    workers: int | None = None,
    backend: str = "process",
    chaos: bool = False,
    chaos_seeds: Sequence[int] = (0,),
    chaos_scenarios: Sequence[int] | None = None,
    zoo: bool = False,
    zoo_seeds: int = 2,
    zoo_families: Sequence[str] | None = None,
    missions: bool = False,
    mission_seeds: int = 1,
    mission_epochs: int = 3,
    mission_families: Sequence[str] | None = None,
    scaling: bool = False,
    scaling_sizes: Sequence[int] | None = None,
    load: bool = False,
    load_clients: int = 200,
    load_seed: int = 0,
    load_service_workers: int = 2,
    **run_kwargs,
) -> str:
    """Run the scenarios and return the markdown report text.

    With ``workers > 1`` the scenarios fan out over worker processes;
    their spans and metrics merge back into the report's tracer (in
    scenario order), so the phase-timing table reflects worker time and
    the metric tables are identical for any worker count (the timing
    table, like any wall-clock measurement, varies run to run).

    With ``chaos=True`` the report appends a resilience section: a
    seeded fault-archetype sweep (:mod:`repro.experiments.chaos`) and
    its recovery metrics.

    With ``zoo=True`` the report appends a scenario-zoo section: a
    procedural-FoI invariant campaign (:mod:`repro.experiments.zoo`)
    with a per-family pass/fail table and any replayable
    counterexample triples.

    With ``missions=True`` the report appends a streaming-replanning
    section (:mod:`repro.experiments.missions`): seeded missions whose
    targets drift and deform across epochs, with per-cell replan /
    cache-hit / C = 1 columns and the campaign's canonical digest.

    With ``scaling=True`` the report appends swarm-size scaling curves
    (:mod:`repro.experiments.scaling`): wall-clock and peak allocation
    per pipeline stage at each size in ``scaling_sizes`` (default
    100 / 1 000 / 10 000).

    With ``load=True`` the report appends a service load-test section
    (:mod:`repro.experiments.loadgen`): a seeded ``load_clients``-strong
    burst against a fresh ``load_service_workers``-shard in-process
    fleet, with per-endpoint latency percentiles and the correctness
    checklist (zero 5xx, Retry-After, exact dedup, byte-identity).
    """
    ids = sorted(scenario_ids or SCENARIOS)
    tracer = Tracer()
    with activate(tracer):
        runs: dict[int, ScenarioRun] = run_scenarios(
            [get_scenario(sid) for sid in ids],
            separation_factor,
            methods,
            workers=workers,
            backend=backend,
            **run_kwargs,
        )

    parts = [
        "# Optimal Marching - reproduction report",
        "",
        f"All scenarios at separation {separation_factor:g} x communication "
        "range; metrics per Definitions 1-2 of the paper.",
        "",
        "## Table I - global connectivity",
        "",
        _md_table(
            ["Scenario"] + list(methods),
            [
                [f"Scenario {sid}"]
                + [runs[sid].evaluations[m].connectivity_flag for m in methods]
                for sid in ids
            ],
        ),
        "",
        "## Per-scenario metrics",
    ]
    for sid in ids:
        run = runs[sid]
        spec = get_scenario(sid)
        parts.extend([
            "",
            f"### Scenario {sid}: {spec.description}",
            "",
            _md_table(
                ["method", "D (km)", "D / D_Hungarian", "L", "C"],
                [
                    [
                        m,
                        f"{run.evaluations[m].total_distance / 1000:.1f}",
                        f"{run.distance_ratio(m):.3f}",
                        f"{run.evaluations[m].stable_link_ratio:.3f}",
                        run.evaluations[m].connectivity_flag,
                    ]
                    for m in methods
                ],
            ),
        ])
    if chaos:
        from repro.experiments.chaos import DEFAULT_SCENARIOS, chaos_sweep

        summary = chaos_sweep(
            scenario_ids=chaos_scenarios or DEFAULT_SCENARIOS,
            seeds=chaos_seeds,
            workers=workers,
        )
        agg = summary["summary"]
        parts.extend([
            "",
            "## Recovery under failures",
            "",
            f"Seeded fault sweep over scenarios "
            f"{summary['matrix']['scenarios']} x archetypes "
            f"{summary['matrix']['archetypes']} "
            f"({summary['config']['robot_count']} robots per case): "
            f"{agg['recovered']}/{agg['cases']} recovered with "
            f"{agg['replans_total']} replans and "
            f"{agg['rejoins_total']} escort rejoins; post-replan global "
            f"connectivity {'held' if agg['connected_all'] else 'VIOLATED'} "
            "at every sampled instant.",
            "",
            _md_table(
                ["scenario", "archetype", "outcome", "survivors",
                 "replans", "extra D", "t_recover"],
                [
                    [
                        d["scenario_id"],
                        d["archetype"],
                        d["outcome"] if d["outcome"] == "recovered"
                        else f"unrecoverable ({d['stage']})",
                        d["survivors"],
                        d["metrics"]["replan_count"]
                        if d["outcome"] == "recovered" else "-",
                        f"{d['metrics']['extra_distance']:.1f}"
                        if d["outcome"] == "recovered" else "-",
                        f"{d['metrics']['time_to_recover']:.3f}"
                        if d["outcome"] == "recovered" else "-",
                    ]
                    for d in summary["cases"]
                ],
            ),
        ])
    if zoo:
        from repro.experiments.zoo import FAMILIES, INVARIANTS, zoo_campaign
        from repro.io import dumps_canonical

        families = tuple(zoo_families) if zoo_families else FAMILIES
        zoo_summary = zoo_campaign(
            families=families,
            seeds=tuple(range(zoo_seeds)),
            workers=workers,
        )
        zagg = zoo_summary["summary"]
        parts.extend([
            "",
            "## Scenario zoo",
            "",
            f"Procedural invariant campaign over families "
            f"{list(zoo_summary['matrix']['families'])} x seeds "
            f"{list(zoo_summary['matrix']['seeds'])} "
            f"({zoo_summary['config']['robot_count']} robots per case, "
            f"methods {zoo_summary['config']['methods']}): "
            f"{zagg['passed']}/{zagg['cases']} cases passed every "
            "whole-pipeline invariant (C = 1 incl. jump left-limits, "
            "Lemma-1 distance floor, Definition-2 re-verification of the "
            "plan document, canonical-byte stability).",
            "",
            _md_table(
                ["family", "cases", "pass", "fail", "err"]
                + list(INVARIANTS),
                [
                    [family, agg["cases"], agg["passed"], agg["failed"],
                     agg["errors"]]
                    + [
                        "ok" if agg["invariant_failures"][n] == 0
                        else f"{agg['invariant_failures'][n]} FAIL"
                        for n in INVARIANTS
                    ]
                    for family, agg in zoo_summary["families"].items()
                ],
            ),
        ])
        if zoo_summary["counterexamples"]:
            parts.extend([
                "",
                "Replayable counterexamples (each reproduces "
                "byte-identically via `python -m repro zoo --replay`):",
                "",
            ])
            for entry in zoo_summary["counterexamples"]:
                triple = dumps_canonical(
                    {k: entry[k] for k in ("family", "seed", "params")}
                ).decode("utf-8")
                parts.append(f"- `{triple}`")
    if missions:
        from repro.experiments.missions import (
            DEFAULT_FAMILIES,
            mission_campaign,
        )
        from repro.io import canonical_digest

        mission_summary = mission_campaign(
            families=tuple(mission_families or DEFAULT_FAMILIES),
            seeds=tuple(range(mission_seeds)),
            epochs=mission_epochs,
            workers=workers,
        )
        magg = mission_summary["summary"]
        parts.extend([
            "",
            "## Streaming missions",
            "",
            f"Seeded replanning campaign over families "
            f"{list(mission_summary['matrix']['families'])} x motions "
            f"{list(mission_summary['matrix']['motions'])} x seeds "
            f"{list(mission_summary['matrix']['seeds'])} "
            f"({mission_summary['config']['robot_count']} robots, "
            f"{mission_summary['matrix']['epochs']} epochs per mission): "
            f"{magg['passed']}/{magg['cells']} missions held C = 1 at "
            f"every sampled instant (incl. jump left-limits) across "
            f"{magg['replans_total']} incremental replans; "
            f"{magg['cache_hits_total']} translation-canonical disk-map "
            f"cache hits / {magg['cache_misses_total']} misses.  "
            f"Canonical digest `{canonical_digest(mission_summary)}` "
            "(identical for any worker count).",
            "",
            _md_table(
                ["family", "motion", "seed", "outcome", "replans",
                 "hits", "misses", "C viol", "D (km)"],
                [
                    [
                        cell["family"], cell["motion"], cell["seed"],
                        f"error@{cell['epoch']}", "-", "-", "-", "-", "-",
                    ]
                    if cell["outcome"] == "error" else
                    [
                        cell["family"], cell["motion"], cell["seed"],
                        cell["outcome"], cell["replans"],
                        cell["cache_hits"], cell["cache_misses"],
                        cell["c_violations"],
                        f"{cell['total_distance'] / 1000:.2f}",
                    ]
                    for cell in mission_summary["cells"]
                ],
            ),
        ])
    if scaling:
        from repro.experiments.scaling import (
            DEFAULT_SIZES,
            format_scaling_table,
            scaling_curve,
        )

        sizes = list(scaling_sizes) if scaling_sizes else list(DEFAULT_SIZES)
        curve = scaling_curve(sizes=sizes)
        parts.extend([
            "",
            "## Scaling curves",
            "",
            f"Synthetic uniform swarms (constant density, seed "
            f"{curve['seed']}, comm range {curve['comm_range']:g} m) at "
            f"n = {', '.join(str(n) for n in curve['sizes'])}; each cell is "
            "wall-clock / peak allocation (tracemalloc) for one pipeline "
            "stage.  The spatial-hash edge set is verified against the "
            "brute-force oracle at the sizes where the oracle is feasible.",
            "",
            format_scaling_table(curve),
        ])
    if load:
        from repro.experiments.loadgen import (
            LoadgenConfig,
            loadgen_passed,
            run_loadgen_fleet,
        )
        from repro.io import canonical_digest

        config = LoadgenConfig(clients=load_clients, seed=load_seed)
        load_summary = run_loadgen_fleet(
            config, service_workers=load_service_workers
        )
        canonical = load_summary["canonical"]
        timing = load_summary["timing"]
        recovery = load_summary.get("recovery") or {}
        checks = [
            ("all clients completed", canonical["all_clients_completed"]),
            ("zero 5xx", canonical["zero_5xx"]),
            ("429 Retry-After correct", canonical["retry_after_correct"]),
            ("dedup exact", canonical["dedup_exact"]),
            ("results byte-identical", canonical["results_byte_identical"]),
        ]
        if recovery:
            checks.append((
                "restart recovery clean",
                recovery.get("jobs_requeued", 0) == 0
                and recovery.get("jobs_restored", 0) >= canonical["uniques"],
            ))
        digest = canonical_digest({
            "format_version": load_summary["format_version"],
            "config": load_summary["config"],
            "canonical": canonical,
        })
        parts.extend([
            "",
            "## Load testing",
            "",
            f"Seeded open-loop burst: {canonical['clients']} clients "
            f"({canonical['uniques']} unique requests, "
            f"{canonical['dedup_hits']} dedup hits, "
            f"{timing['rejected_429']} x 429) against a fresh "
            f"{load_summary['service_workers']}-shard fleet in "
            f"{timing['elapsed_s']:.2f}s "
            f"({timing['throughput_rps']:.1f} req/s); verdict: "
            f"{'PASS' if loadgen_passed(load_summary) else 'FAIL'}.  "
            f"Canonical summary digest `{digest}` (identical for any "
            "worker count).",
            "",
            _md_table(
                ["endpoint", "n", "p50 ms", "p95 ms", "p99 ms", "max ms"],
                [
                    [
                        endpoint,
                        stats["count"],
                        f"{stats['p50_ms']:.1f}",
                        f"{stats['p95_ms']:.1f}",
                        f"{stats['p99_ms']:.1f}",
                        f"{stats['max_ms']:.1f}",
                    ]
                    for endpoint, stats in timing["endpoints"].items()
                ],
            ),
            "",
            _md_table(
                ["check", "result"],
                [[name, "ok" if ok else "FAIL"] for name, ok in checks],
            ),
        ])
        if recovery:
            parts.extend([
                "",
                "Restart recovery (same journal, fresh fleet): "
                "jobs resumed and journal replay time.",
                "",
                _md_table(
                    ["jobs restored", "requeued", "retried",
                     "journal records", "replay (s)"],
                    [[
                        recovery.get("jobs_restored", 0),
                        recovery.get("jobs_requeued", 0),
                        recovery.get("jobs_retried", 0),
                        recovery.get("journal_records", 0),
                        f"{recovery.get('replay_s', 0.0):.3f}",
                    ]],
                ),
            ])
    parts.extend([
        "",
        "## Phase timings",
        "",
        _md_table(
            ["span", "calls", "total (s)", "mean (ms)"],
            [
                [name, row["calls"], f"{row['total_s']:.3f}",
                 f"{row['mean_s'] * 1000:.2f}"]
                for name, row in tracer.phase_timings().items()
            ],
        ),
    ])
    parts.append("")
    return "\n".join(parts)


def write_report(path, **kwargs) -> Path:
    """Build the report and write it to ``path``."""
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(build_report(**kwargs))
    return p
