"""Figure renderers for swarms, meshes, disk maps and pipelines.

Reproduces the visual panels of the paper (Figs. 2, 3, 5, 6) as SVG:
robots as dots, communication links coloured blue when preserved from
M1 and red when new (the paper's colour convention), FoI boundaries and
holes as outlines.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.foi.region import FieldOfInterest
from repro.marching.pipeline import PipelineStages
from repro.mesh.trimesh import TriMesh
from repro.network.udg import UnitDiskGraph
from repro.viz.svg import SvgCanvas

__all__ = [
    "render_deployment",
    "render_mesh",
    "render_disk_map",
    "render_pipeline_figure",
]

PRESERVED = "#1f77b4"  # blue, the paper's preserved-link colour
NEW = "#d62728"  # red, the paper's new-link colour
ROBOT = "#222222"


def _foi_bounds(foi: FieldOfInterest, extra_points=None, margin_frac: float = 0.05):
    xmin, ymin, xmax, ymax = foi.bounds
    if extra_points is not None and len(extra_points):
        pts = np.asarray(extra_points, dtype=float)
        xmin = min(xmin, float(pts[:, 0].min()))
        ymin = min(ymin, float(pts[:, 1].min()))
        xmax = max(xmax, float(pts[:, 0].max()))
        ymax = max(ymax, float(pts[:, 1].max()))
    mx = margin_frac * (xmax - xmin)
    my = margin_frac * (ymax - ymin)
    return (xmin - mx, ymin - my, xmax + mx, ymax + my)


def _draw_foi(canvas: SvgCanvas, foi: FieldOfInterest) -> None:
    canvas.polygon(foi.outer.vertices, fill="#f4f4f0", stroke="#333", opacity=1.0)
    for hole in foi.holes:
        canvas.polygon(hole.vertices, fill="#cfd8dc", stroke="#555", opacity=1.0)


def render_deployment(
    foi: FieldOfInterest,
    positions,
    comm_range: float,
    initial_links=None,
    path=None,
    width: int = 640,
) -> str:
    """Render a swarm inside a FoI with colour-coded links.

    Parameters
    ----------
    foi : FieldOfInterest
    positions : (n, 2) array
    comm_range : float
    initial_links : (m, 2) int array, optional
        The M1 link set; current links present here are drawn blue
        (preserved), the rest red (new).  Without it all links are grey.
    path : str or Path, optional
        When given, the SVG is written there.

    Returns
    -------
    str : the SVG document.
    """
    pts = np.asarray(positions, dtype=float)
    canvas = SvgCanvas(_foi_bounds(foi, pts), width=width)
    _draw_foi(canvas, foi)
    graph = UnitDiskGraph(pts, comm_range)
    initial = (
        {tuple(sorted(e)) for e in np.asarray(initial_links, dtype=int).tolist()}
        if initial_links is not None
        else None
    )
    for i, j in graph.edges:
        if initial is None:
            color = "#999999"
        else:
            color = PRESERVED if (int(i), int(j)) in initial else NEW
        canvas.line(pts[i], pts[j], stroke=color, width_px=1.0, opacity=0.8)
    for p in pts:
        canvas.circle(p, 2.5, fill=ROBOT)
    if path is not None:
        canvas.save(path)
    return canvas.to_string()


def render_mesh(mesh: TriMesh, path=None, width: int = 640, stroke: str = "#1f77b4") -> str:
    """Render a triangle mesh's edges and vertices."""
    v = mesh.vertices
    xmin, ymin = v.min(axis=0)
    xmax, ymax = v.max(axis=0)
    pad = 0.05 * max(xmax - xmin, ymax - ymin, 1e-9)
    canvas = SvgCanvas((xmin - pad, ymin - pad, xmax + pad, ymax + pad), width=width)
    for a, b in mesh.edges:
        canvas.line(v[a], v[b], stroke=stroke, width_px=0.8, opacity=0.8)
    for p in v:
        canvas.circle(p, 1.8, fill=ROBOT)
    if path is not None:
        canvas.save(path)
    return canvas.to_string()


def render_disk_map(disk_positions, triangles, path=None, width: int = 480) -> str:
    """Render a unit-disk embedding (panel (c) of Fig. 2)."""
    pts = np.asarray(disk_positions, dtype=float)
    canvas = SvgCanvas((-1.1, -1.1, 1.1, 1.1), width=width)
    theta = np.linspace(0, 2 * np.pi, 96)
    canvas.polyline(
        np.column_stack([np.cos(theta), np.sin(theta)]), stroke="#999", width_px=1.0
    )
    tris = np.asarray(triangles, dtype=int)
    seen = set()
    for tri in tris:
        for u, w in ((tri[0], tri[1]), (tri[1], tri[2]), (tri[2], tri[0])):
            key = (min(u, w), max(u, w))
            if key in seen:
                continue
            seen.add(key)
            canvas.line(pts[u], pts[w], stroke="#1f77b4", width_px=0.6, opacity=0.7)
    for p in pts:
        canvas.circle(p, 1.5, fill=ROBOT)
    if path is not None:
        canvas.save(path)
    return canvas.to_string()


def render_pipeline_figure(stages: PipelineStages, directory, comm_range: float) -> list[Path]:
    """Write the six panels of Fig. 2 for one pipeline run.

    Returns the list of written SVG paths (a)-(f).
    """
    out_dir = Path(directory)
    out_dir.mkdir(parents=True, exist_ok=True)
    result = stages.result
    m2 = stages.foi_mesh.foi
    written: list[Path] = []

    # (a) connectivity graph in M1: grey links (no colour classes yet).
    canvas = SvgCanvas(
        _foi_bounds_from_points(result.start_positions), width=640
    )
    g = stages.m1_graph
    for i, j in g.edges:
        canvas.line(g.positions[i], g.positions[j], stroke="#999", width_px=0.8)
    for p in g.positions:
        canvas.circle(p, 2.5, fill=ROBOT)
    written.append(canvas.save(out_dir / "fig2a_m1_graph.svg"))

    # (b) extracted triangulation T.
    path_b = out_dir / "fig2b_triangulation.svg"
    render_mesh(stages.t_mesh, path=path_b)
    written.append(path_b)

    # (c) harmonic map of T to the unit disk.
    path_c = out_dir / "fig2c_disk_map.svg"
    render_disk_map(
        stages.disk_map_t.disk_positions,
        stages.disk_map_t.filled.mesh.triangles,
        path=path_c,
    )
    written.append(path_c)

    # (d) target FoI surface (gridded).
    path_d = out_dir / "fig2d_m2_mesh.svg"
    render_mesh(stages.foi_mesh.mesh, path=path_d, stroke="#2ca02c")
    written.append(path_d)

    # (e) redeployed after the march.
    path_e = out_dir / "fig2e_redeployed.svg"
    render_deployment(
        m2, result.march_targets, comm_range,
        initial_links=result.links.links, path=path_e,
    )
    written.append(path_e)

    # (f) final optimal coverage positions.
    path_f = out_dir / "fig2f_final.svg"
    render_deployment(
        m2, result.final_positions, comm_range,
        initial_links=result.links.links, path=path_f,
    )
    written.append(path_f)
    return written


def _foi_bounds_from_points(points, margin_frac: float = 0.08):
    pts = np.asarray(points, dtype=float)
    xmin, ymin = pts.min(axis=0)
    xmax, ymax = pts.max(axis=0)
    mx = margin_frac * max(xmax - xmin, 1e-9)
    my = margin_frac * max(ymax - ymin, 1e-9)
    return (xmin - mx, ymin - my, xmax + mx, ymax + my)
